open Topology

let node id kind name nports = { Topo.id; kind; name; nports }
let link a ap b bp = { Topo.a = { Topo.node = a; port = ap }; b = { Topo.node = b; port = bp } }

(* ---------------- Topo ---------------- *)

let small_topo () =
  Topo.create
    ~nodes:
      [ node 0 Topo.Host "h0" 1;
        node 1 Topo.Edge_switch "e0" 2;
        node 2 Topo.Host "h1" 1 ]
    ~links:[ link 0 0 1 0; link 2 0 1 1 ]

let test_topo_basic () =
  let t = small_topo () in
  Testutil.check_int "nodes" 3 (Topo.node_count t);
  Testutil.check_int "links" 2 (Topo.link_count t);
  Testutil.check_int "degree switch" 2 (Topo.degree t 1);
  Testutil.check_int "degree host" 1 (Topo.degree t 0);
  Testutil.check_bool "connected" true (Topo.is_connected t);
  (match Topo.find_by_name t "e0" with
   | Some n -> Testutil.check_int "by name" 1 n.Topo.id
   | None -> Alcotest.fail "name lookup");
  Testutil.check_bool "absent name" true (Topo.find_by_name t "nope" = None)

let test_topo_peer () =
  let t = small_topo () in
  (match Topo.peer t ~node:0 ~port:0 with
   | Some e ->
     Testutil.check_int "peer node" 1 e.Topo.node;
     Testutil.check_int "peer port" 0 e.Topo.port
   | None -> Alcotest.fail "no peer");
  (* symmetric *)
  (match Topo.peer t ~node:1 ~port:1 with
   | Some e -> Testutil.check_int "reverse peer" 2 e.Topo.node
   | None -> Alcotest.fail "no reverse peer");
  Testutil.check_bool "out of range" true (Topo.peer t ~node:0 ~port:5 = None)

let test_topo_validation () =
  let bad_id () =
    ignore
      (Topo.create ~nodes:[ node 1 Topo.Host "h" 1 ] ~links:[])
  in
  (try
     bad_id ();
     Alcotest.fail "bad id accepted"
   with Invalid_argument _ -> ());
  let dup_name () =
    ignore
      (Topo.create
         ~nodes:[ node 0 Topo.Host "h" 1; node 1 Topo.Host "h" 1 ]
         ~links:[])
  in
  (try
     dup_name ();
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  let double_wire () =
    ignore
      (Topo.create
         ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1; node 2 Topo.Host "h2" 1 ]
         ~links:[ link 0 0 1 0; link 0 0 2 0 ])
  in
  (try
     double_wire ();
     Alcotest.fail "double wiring accepted"
   with Invalid_argument _ -> ());
  let bad_port () =
    ignore
      (Topo.create ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1 ]
         ~links:[ link 0 3 1 0 ])
  in
  try
    bad_port ();
    Alcotest.fail "bad port accepted"
  with Invalid_argument _ -> ()

let test_topo_disconnected () =
  let t =
    Topo.create
      ~nodes:[ node 0 Topo.Host "h0" 1; node 1 Topo.Host "h1" 1 ]
      ~links:[]
  in
  Testutil.check_bool "disconnected" false (Topo.is_connected t)

(* ---------------- Fat tree ---------------- *)

let test_fattree_counts () =
  List.iter
    (fun k ->
      let ft = Fattree.build ~k in
      let topo = ft.Multirooted.topo in
      let hosts = Topo.nodes_of_kind topo Topo.Host in
      let edges = Topo.nodes_of_kind topo Topo.Edge_switch in
      let aggs = Topo.nodes_of_kind topo Topo.Agg_switch in
      let cores = Topo.nodes_of_kind topo Topo.Core_switch in
      Testutil.check_int "hosts" (k * k * k / 4) (List.length hosts);
      Testutil.check_int "edges" (k * k / 2) (List.length edges);
      Testutil.check_int "aggs" (k * k / 2) (List.length aggs);
      Testutil.check_int "cores" (k * k / 4) (List.length cores);
      (* links: host + edge-agg + agg-core *)
      let expected_links = (k * k * k / 4) + (k * (k / 2) * (k / 2)) + (k * (k / 2) * (k / 2)) in
      Testutil.check_int "links" expected_links (Topo.link_count topo);
      Testutil.check_bool "connected" true (Topo.is_connected topo))
    [ 2; 4; 6; 8 ]

let test_fattree_degrees () =
  let k = 4 in
  let ft = Fattree.build ~k in
  let topo = ft.Multirooted.topo in
  Array.iter
    (fun (n : Topo.node) ->
      match n.Topo.kind with
      | Topo.Host -> Testutil.check_int "host degree" 1 (Topo.degree topo n.Topo.id)
      | Topo.Edge_switch | Topo.Agg_switch | Topo.Core_switch ->
        Testutil.check_int "switch degree" k (Topo.degree topo n.Topo.id))
    (Topo.nodes topo)

let test_fattree_core_per_pod () =
  let k = 4 in
  let ft = Fattree.build ~k in
  let topo = ft.Multirooted.topo in
  (* every core connects to exactly one agg in every pod *)
  Array.iter
    (fun core ->
      let pods_touched =
        List.map
          (fun (_, (e : Topo.endpoint)) ->
            let agg = e.Topo.node in
            (* find which pod this agg belongs to *)
            let pod = ref (-1) in
            Array.iteri
              (fun p aggs -> if Array.exists (fun a -> a = agg) aggs then pod := p)
              ft.Multirooted.aggs;
            !pod)
          (Topo.neighbors topo core)
      in
      Testutil.check_int "one per pod" k (List.length (List.sort_uniq compare pods_touched)))
    ft.Multirooted.cores

let test_fattree_accessors () =
  let ft = Fattree.build ~k:4 in
  Testutil.check_int "k" 4 (Fattree.k ft);
  Testutil.check_int "num_hosts" 16 (Fattree.num_hosts ~k:4);
  Testutil.check_int "num_switches" 20 (Fattree.num_switches ~k:4);
  let h = Fattree.host ft ~pod:1 ~edge:1 ~slot:1 in
  Testutil.check_string "host name" "host-1-1-1" (Topo.node ft.Multirooted.topo h).Topo.name;
  let e = Fattree.edge ft ~pod:2 ~pos:0 in
  Testutil.check_string "edge name" "edge-2-0" (Topo.node ft.Multirooted.topo e).Topo.name;
  try
    ignore (Fattree.host ft ~pod:9 ~edge:0 ~slot:0);
    Alcotest.fail "out of range accepted"
  with Invalid_argument _ -> ()

let test_fattree_invalid_k () =
  (try
     ignore (Fattree.build ~k:3);
     Alcotest.fail "odd k accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Fattree.build ~k:0);
    Alcotest.fail "k=0 accepted"
  with Invalid_argument _ -> ()

(* regression guard for the builder's allocation diet (node names are
   assembled with [^], not [sprintf]): a k=8 build costs ~21k minor
   words; the bound leaves ~3x headroom for compiler/runtime noise *)
let test_fattree_allocation_budget () =
  ignore (Fattree.build ~k:8);
  let before = Gc.minor_words () in
  ignore (Fattree.build ~k:8);
  let words = Gc.minor_words () -. before in
  Testutil.check_bool
    (Printf.sprintf "k=8 build allocates %.0f minor words (budget 60000)" words)
    true (words < 60_000.0)

let prop_fattree_structure =
  Testutil.prop "fat tree structural invariants" ~count:4
    (QCheck2.Gen.map (fun i -> 2 * (i + 1)) (QCheck2.Gen.int_bound 4))
    (fun k ->
      let ft = Fattree.build ~k in
      let topo = ft.Multirooted.topo in
      Topo.is_connected topo
      && Array.for_all (fun h -> Topo.degree topo h = 1) ft.Multirooted.hosts
      && Array.for_all (fun c -> Topo.degree topo c = k) ft.Multirooted.cores)

let test_to_dot () =
  let ft = Fattree.build ~k:4 in
  let dot = Topo.to_dot ~name:"k4" ft.Multirooted.topo in
  let contains needle =
    let nl = String.length needle and hl = String.length dot in
    let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Testutil.check_bool "graph header" true (contains "graph \"k4\"");
  Testutil.check_bool "host node" true (contains "host-0-0-0");
  Testutil.check_bool "core node" true (contains "core-3");
  Testutil.check_bool "an edge-agg link" true (contains "\"edge-0-0\" -- \"agg-0-0\"");
  (* one line per link *)
  let count_links =
    String.fold_left (fun (acc, prev) c ->
        if prev = '-' && c = '-' then (acc + 1, ' ') else (acc, c))
      (0, ' ') dot
    |> fst
  in
  Testutil.check_int "link lines" (Topo.link_count ft.Multirooted.topo) count_links

(* ---------------- Multirooted ---------------- *)

let test_multirooted_validation () =
  let bad =
    { Multirooted.wiring = Multirooted.Stripes; num_pods = 4; edges_per_pod = 2;
      aggs_per_pod = 3; hosts_per_edge = 2; num_cores = 4 }
  in
  Testutil.check_bool "indivisible stripes" true (Result.is_error (Multirooted.validate_spec bad));
  let bad2 = { bad with Multirooted.aggs_per_pod = 2; num_pods = 0 } in
  Testutil.check_bool "zero pods" true (Result.is_error (Multirooted.validate_spec bad2))

let test_multirooted_asymmetric () =
  (* a non-fat-tree multi-rooted tree: 3 pods, oversubscribed edges *)
  let spec =
    { Multirooted.wiring = Multirooted.Stripes; num_pods = 3; edges_per_pod = 2;
      aggs_per_pod = 2; hosts_per_edge = 4; num_cores = 4 }
  in
  let mt = Multirooted.build spec in
  let topo = mt.Multirooted.topo in
  Testutil.check_int "hosts" 24 (List.length (Topo.nodes_of_kind topo Topo.Host));
  Testutil.check_int "cores" 4 (List.length (Topo.nodes_of_kind topo Topo.Core_switch));
  Testutil.check_bool "connected" true (Topo.is_connected topo);
  Testutil.check_int "uplinks per agg" 2 (Multirooted.uplinks_per_agg spec);
  (* every core has one link per pod *)
  Array.iter (fun c -> Testutil.check_int "core degree" 3 (Topo.degree topo c)) mt.Multirooted.cores

let test_host_location () =
  let ft = Fattree.build ~k:4 in
  let h = Fattree.host ft ~pod:2 ~edge:1 ~slot:0 in
  (match Multirooted.host_location ft h with
   | Some (p, e, s) ->
     Testutil.check_int "pod" 2 p;
     Testutil.check_int "edge" 1 e;
     Testutil.check_int "slot" 0 s
   | None -> Alcotest.fail "host not located");
  Testutil.check_bool "non-host" true (Multirooted.host_location ft ft.Multirooted.cores.(0) = None)

(* ---------------- Topology family ---------------- *)

let test_family_of_string () =
  (match Topo.Family.of_string ~k:4 "plain" with
   | Ok (Topo.Family.Plain { k }) -> Testutil.check_int "plain k" 4 k
   | _ -> Alcotest.fail "plain not parsed");
  (match Topo.Family.of_string ~k:8 "ab" with
   | Ok (Topo.Family.Ab { k }) -> Testutil.check_int "ab k" 8 k
   | _ -> Alcotest.fail "ab not parsed");
  (match Topo.Family.of_string ~k:4 "two-layer" with
   | Ok (Topo.Family.Two_layer { leaves; spines; hosts_per_leaf }) ->
     Testutil.check_int "leaves" 4 leaves;
     Testutil.check_int "spines" 2 spines;
     Testutil.check_int "hosts per leaf" 4 hosts_per_leaf
   | _ -> Alcotest.fail "two-layer not parsed");
  Testutil.check_bool "unknown rejected" true
    (Result.is_error (Topo.Family.of_string ~k:4 "butterfly"));
  List.iter
    (fun f ->
      let name = Topo.Family.to_string f in
      match Topo.Family.of_string ~k:4 name with
      | Ok f' -> Testutil.check_string "round trip" name (Topo.Family.to_string f')
      | Error e -> Alcotest.failf "%s did not round-trip: %s" name e)
    (Topo.Family.all ~k:4)

let test_family_counts () =
  (* AB tree has plain-fat-tree counts; two-layer drops the agg tier *)
  let ab = Multirooted.build_family (Topo.Family.Ab { k = 4 }) in
  Testutil.check_int "ab hosts" 16 (List.length (Topo.nodes_of_kind ab.Multirooted.topo Topo.Host));
  Testutil.check_int "ab aggs" 8
    (List.length (Topo.nodes_of_kind ab.Multirooted.topo Topo.Agg_switch));
  Testutil.check_int "ab cores" 4
    (List.length (Topo.nodes_of_kind ab.Multirooted.topo Topo.Core_switch));
  let tl =
    Multirooted.build_family (Topo.Family.Two_layer { leaves = 4; spines = 2; hosts_per_leaf = 4 })
  in
  Testutil.check_int "two-layer hosts" 16
    (List.length (Topo.nodes_of_kind tl.Multirooted.topo Topo.Host));
  Testutil.check_int "two-layer leaves" 4
    (List.length (Topo.nodes_of_kind tl.Multirooted.topo Topo.Edge_switch));
  Testutil.check_int "two-layer aggs" 0
    (List.length (Topo.nodes_of_kind tl.Multirooted.topo Topo.Agg_switch));
  Testutil.check_int "two-layer spines" 2
    (List.length (Topo.nodes_of_kind tl.Multirooted.topo Topo.Core_switch));
  Testutil.check_bool "two-layer connected" true (Topo.is_connected tl.Multirooted.topo)

(* generator for (family descriptor, arity): every member at k in {2,4,6,8} *)
let family_gen =
  QCheck2.Gen.map
    (fun (i, j) ->
      let k = 2 * (i + 1) in
      (List.nth (Topo.Family.all ~k) j, k))
    QCheck2.Gen.(pair (int_bound 3) (int_bound 2))

(* no dangling links, full radix: every port of every node has a peer *)
let prop_family_no_dangling =
  Testutil.prop "family wirings leave no port dangling" ~count:12 family_gen
    (fun (fam, _k) ->
      let mt = Multirooted.build_family fam in
      let topo = mt.Multirooted.topo in
      Array.for_all
        (fun (n : Topo.node) ->
          Topo.degree topo n.Topo.id = n.Topo.nports
          && List.init n.Topo.nports (fun p -> Topo.peer topo ~node:n.Topo.id ~port:p)
             |> List.for_all Option.is_some)
        (Topo.nodes topo))

(* AB stripe symmetry: even (type-A) pods keep row wiring, odd (type-B)
   pods transpose it — and agg_uplink_core_index is the ground truth the
   built topology actually realizes *)
let prop_family_stripe_symmetry =
  Testutil.prop "AB uplinks follow the row/column transposition" ~count:8
    (QCheck2.Gen.map (fun i -> 2 * (i + 1)) (QCheck2.Gen.int_bound 3))
    (fun k ->
      let fam = Topo.Family.Ab { k } in
      let spec = Multirooted.spec_of_family fam in
      let mt = Multirooted.build_family fam in
      let topo = mt.Multirooted.topo in
      let u = Multirooted.uplinks_per_agg spec in
      let ok = ref true in
      for pod = 0 to spec.Multirooted.num_pods - 1 do
        for agg_pos = 0 to spec.Multirooted.aggs_per_pod - 1 do
          for j = 0 to u - 1 do
            let expect =
              mt.Multirooted.cores.(Multirooted.agg_uplink_core_index spec ~pod ~agg_pos ~j)
            in
            let agg = mt.Multirooted.aggs.(pod).(agg_pos) in
            let port = Multirooted.agg_uplink_port mt ~stripe_member:j in
            (match Topo.peer topo ~node:agg ~port with
             | Some e when e.Topo.node = expect -> ()
             | _ -> ok := false);
            (* type-A pods read along a core row, type-B along a column *)
            let row, member = Multirooted.core_label spec ~index:(Multirooted.core_index spec
              ~row:(if Multirooted.pod_is_type_b spec ~pod then j else agg_pos)
              ~member:(if Multirooted.pod_is_type_b spec ~pod then agg_pos else j)) in
            let erow, emember =
              Multirooted.core_label spec
                ~index:(Multirooted.agg_uplink_core_index spec ~pod ~agg_pos ~j)
            in
            if (row, member) <> (erow, emember) then ok := false
          done
        done
      done;
      !ok)

(* LDP self-configuration agrees with generator ground truth on every
   family member: booted coordinates match the build arrays *)
let test_family_ldp_ground_truth () =
  List.iter
    (fun fam ->
      let fam_fab = Testutil.converged_family fam in
      let spec = Portland.Fabric.spec fam_fab in
      let mt = Portland.Fabric.tree fam_fab in
      let coords_of dev =
        match Portland.Switch_agent.coords (Portland.Fabric.agent fam_fab dev) with
        | Some c -> c
        | None ->
          Alcotest.failf "%s: switch %d has no coordinates" (Topo.Family.to_string fam) dev
      in
      (* edge positions are negotiated, so within a pod any permutation of
         0..edges_per_pod-1 is a correct outcome; pod membership is forced *)
      Array.iteri
        (fun p row ->
          let positions =
            Array.to_list row
            |> List.map (fun dev ->
                   match coords_of dev with
                   | Portland.Coords.Edge { pod; position } ->
                     Testutil.check_int "edge pod" p pod;
                     position
                   | _ -> Alcotest.failf "edge %d mislabelled" dev)
          in
          Testutil.check_bool "edge positions form a permutation" true
            (List.sort compare positions = List.init (Array.length row) Fun.id))
        mt.Multirooted.edges;
      Array.iteri
        (fun p row ->
          Array.iteri
            (fun a dev ->
              match coords_of dev with
              | Portland.Coords.Agg { pod; stripe } ->
                Testutil.check_int "agg pod" p pod;
                Testutil.check_int "agg stripe"
                  (Multirooted.agg_stripe_label spec ~pod:p ~agg_pos:a)
                  stripe
              | _ -> Alcotest.failf "agg %d mislabelled" dev)
            row)
        mt.Multirooted.aggs;
      Array.iteri
        (fun i dev ->
          match coords_of dev with
          | Portland.Coords.Core { stripe; member } ->
            let erow, emember = Multirooted.core_label spec ~index:i in
            Testutil.check_int "core row" erow stripe;
            Testutil.check_int "core member" emember member
          | _ -> Alcotest.failf "core %d mislabelled" dev)
        mt.Multirooted.cores)
    (Topo.Family.all ~k:4)

(* ---------------- Paths ---------------- *)

let test_paths_distances () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h000 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h001 = Fattree.host ft ~pod:0 ~edge:0 ~slot:1 in
  let h010 = Fattree.host ft ~pod:0 ~edge:1 ~slot:0 in
  let h300 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  Testutil.check_int "same edge" 2 (Option.get (Paths.distance topo ~src:h000 ~dst:h001));
  Testutil.check_int "same pod" 4 (Option.get (Paths.distance topo ~src:h000 ~dst:h010));
  Testutil.check_int "inter pod" 6 (Option.get (Paths.distance topo ~src:h000 ~dst:h300));
  Testutil.check_int "self" 0 (Option.get (Paths.distance topo ~src:h000 ~dst:h000))

let test_paths_exclusion () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h0 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h3 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  let path = Option.get (Paths.shortest topo ~src:h0 ~dst:h3) in
  let links = Paths.links_on_path topo path in
  Testutil.check_int "links on 6-hop path" 6 (List.length links);
  (* exclude the host's only access link: unreachable *)
  let access = List.hd links in
  Testutil.check_bool "unreachable without access link" false
    (Paths.reachable ~excluded_links:[ access ] topo ~src:h0 ~dst:h3);
  (* exclude an interior link: still reachable via another path *)
  let interior = List.nth links 2 in
  Testutil.check_bool "reachable around interior failure" true
    (Paths.reachable ~excluded_links:[ interior ] topo ~src:h0 ~dst:h3)

let test_edge_disjoint () =
  let ft = Fattree.build ~k:4 in
  let topo = ft.Multirooted.topo in
  let h0 = Fattree.host ft ~pod:0 ~edge:0 ~slot:0 in
  let h3 = Fattree.host ft ~pod:3 ~edge:0 ~slot:0 in
  (* hosts have one NIC: exactly one disjoint path *)
  Testutil.check_int "host pair" 1 (Paths.edge_disjoint_count topo ~src:h0 ~dst:h3);
  (* edge switches in different pods have k/2 = 2 disjoint paths *)
  let e0 = Fattree.edge ft ~pod:0 ~pos:0 in
  let e3 = Fattree.edge ft ~pod:3 ~pos:0 in
  Testutil.check_int "edge pair" 2 (Paths.edge_disjoint_count topo ~src:e0 ~dst:e3)

let test_average_shortest_path () =
  let ft = Fattree.build ~k:4 in
  let avg = Paths.average_shortest_path ft.Multirooted.topo ~between:Topo.Host in
  (* 16 hosts: 1/15 same edge (2 hops), 2/15 same pod (4), 12/15 inter-pod (6) *)
  Testutil.check_float_eps "k=4 host average" ~eps:0.01 5.4666 avg

let prop_paths_symmetric =
  Testutil.prop "distance is symmetric" ~count:30
    QCheck2.Gen.(pair (int_bound 15) (int_bound 15))
    (fun (a, b) ->
      let ft = Fattree.build ~k:4 in
      let topo = ft.Multirooted.topo in
      let ha = ft.Multirooted.hosts.(a) and hb = ft.Multirooted.hosts.(b) in
      Paths.distance topo ~src:ha ~dst:hb = Paths.distance topo ~src:hb ~dst:ha)

let () =
  Alcotest.run "topology"
    [ ( "topo",
        [ Alcotest.test_case "basics" `Quick test_topo_basic;
          Alcotest.test_case "peer lookup" `Quick test_topo_peer;
          Alcotest.test_case "validation" `Quick test_topo_validation;
          Alcotest.test_case "disconnected" `Quick test_topo_disconnected;
          Alcotest.test_case "dot export" `Quick test_to_dot ] );
      ( "fattree",
        [ Alcotest.test_case "counts" `Quick test_fattree_counts;
          Alcotest.test_case "degrees" `Quick test_fattree_degrees;
          Alcotest.test_case "core per pod" `Quick test_fattree_core_per_pod;
          Alcotest.test_case "accessors" `Quick test_fattree_accessors;
          Alcotest.test_case "invalid k" `Quick test_fattree_invalid_k;
          Alcotest.test_case "allocation budget" `Quick test_fattree_allocation_budget;
          prop_fattree_structure ] );
      ( "multirooted",
        [ Alcotest.test_case "spec validation" `Quick test_multirooted_validation;
          Alcotest.test_case "asymmetric spec" `Quick test_multirooted_asymmetric;
          Alcotest.test_case "host location" `Quick test_host_location ] );
      ( "family",
        [ Alcotest.test_case "descriptor parsing" `Quick test_family_of_string;
          Alcotest.test_case "member counts" `Quick test_family_counts;
          prop_family_no_dangling;
          prop_family_stripe_symmetry;
          Alcotest.test_case "ldp matches ground truth" `Quick test_family_ldp_ground_truth ] );
      ( "paths",
        [ Alcotest.test_case "fat-tree distances" `Quick test_paths_distances;
          Alcotest.test_case "link exclusion" `Quick test_paths_exclusion;
          Alcotest.test_case "edge-disjoint paths" `Quick test_edge_disjoint;
          Alcotest.test_case "average shortest path" `Quick test_average_shortest_path;
          prop_paths_symmetric ] ) ]
