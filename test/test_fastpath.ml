(* The hot-path guard suite.

   1. Differential flow-table properties: the destination-prefix trie
      (Flow_table.lookup / lookup_dst) must agree with the linear
      reference scan (lookup_linear / lookup_dst_linear) on arbitrary
      tables — host exacts, pod/position/port prefixes, broadcast
      entries, wildcards, non-prefix masks, other-field matches, ECMP
      groups, colliding priorities — across install/remove/replace
      sequences, probed with random and adversarial (prefix-boundary)
      destinations.

   2. Codec fuzz: the scratch-buffer fast encoder must emit bytes
      identical to the Buffer-based reference, decode must invert encode,
      the slicing-by-8 CRC must equal the bytewise CRC, and corrupted or
      truncated frames must be rejected by both decode paths alike.

   3. Engine determinism regression: a fixed-seed k=4 failure/recovery
      scenario produces an identical event trace, event count, final
      clock and switch tables across two runs — the heap/engine hot-loop
      rework must not perturb same-instant FIFO semantics anywhere. *)

open Eventsim
module FT = Switchfab.Flow_table
module MR = Topology.Multirooted

let mac_mask = 0xFFFFFFFFFFFF

(* ---------------- flow-table differential ---------------- *)

let prefix_mask len = if len = 0 then 0 else mac_mask lsl (48 - len) land mac_mask

(* a random entry; [i] feeds the name so the control flow below can
   deliberately reuse names (replacement) or retire them (removal) *)
let random_entry p ~name ~groups =
  let v = Prng.int p (1 lsl 48) in
  let priority = Prng.pick p [| 10; 50; 50; 70; 90; 90; 200 |] in
  let kind = Prng.int p 10 in
  let mtch =
    if kind < 5 then begin
      (* PortLand-shaped prefixes, including the adversarial boundary
         lengths 47 and 1 *)
      let len = Prng.pick p [| 0; 1; 8; 16; 16; 24; 32; 47; 48; 48 |] in
      FT.match_dst_prefix ~value:v ~mask:(prefix_mask len)
    end
    else if kind = 5 then { FT.match_any with FT.dst_mac = None } (* full wildcard *)
    else if kind = 6 then
      (* broadcast-style exact match *)
      FT.match_dst_prefix ~value:mac_mask ~mask:mac_mask
    else if kind = 7 then
      (* non-prefix mask: must fall back to the residual path *)
      FT.match_dst_prefix ~value:v ~mask:(Prng.int p (1 lsl 48))
    else if kind = 8 then
      (* dst prefix plus another field: residual *)
      { (FT.match_dst_prefix ~value:v ~mask:(prefix_mask 16)) with FT.ethertype = Some 0x0800 }
    else { FT.match_any with FT.ip_proto = Some (Prng.pick p [| 6; 17 |]) }
  in
  let actions =
    if Prng.int p 4 = 0 && groups <> [] then [ FT.Group (Prng.pick p (Array.of_list groups)) ]
    else [ FT.Output (Prng.int p 48) ]
  in
  { FT.name; priority; mtch; actions }

(* destinations that stress every prefix boundary of the installed state *)
let adversarial_dsts table =
  List.concat_map
    (fun (e : FT.entry) ->
      match e.FT.mtch.FT.dst_mac with
      | None -> [ 0; mac_mask ]
      | Some { FT.value; mask } ->
        let base = value land mask in
        let inv = lnot mask land mac_mask in
        [ value; base; base lor inv; (* inside: lowest and highest of the class *)
          value lxor 1; (* flip the last bit *)
          (base lxor (inv + 1)) land mac_mask; (* flip the lowest masked bit: outside *)
          (base + inv + 1) land mac_mask (* the next prefix over *) ])
    (FT.entries table)

let frame_for p dst =
  let dst = Netcore.Mac_addr.of_int dst in
  let src = Netcore.Mac_addr.of_int (Prng.int p (1 lsl 48)) in
  match Prng.int p 3 with
  | 0 -> Netcore.Eth.make ~dst ~src (Netcore.Eth.Raw { ethertype = 0x1234; len = 10 })
  | 1 ->
    Netcore.Eth.make ~dst ~src
      (Netcore.Eth.Ipv4
         (Netcore.Ipv4_pkt.udp
            ~src:(Netcore.Ipv4_addr.of_int (Prng.int p 0xFFFFFF))
            ~dst:(Netcore.Ipv4_addr.of_int (Prng.int p 0xFFFFFF))
            (Netcore.Udp.make ~flow_id:(Prng.int p 100) ~app_seq:0 ~payload_len:50 ())))
  | _ ->
    Netcore.Eth.make ~dst ~src
      (Netcore.Eth.Ipv4
         (Netcore.Ipv4_pkt.tcp
            ~src:(Netcore.Ipv4_addr.of_int 1) ~dst:(Netcore.Ipv4_addr.of_int 2)
            (Netcore.Tcp_seg.make ~seq:0 ~ack_num:0 ~payload_len:0 ())))

let name_of = function Some (e : FT.entry) -> e.FT.name | None -> "<miss>"

let check_dst_agreement table dst =
  let fast = FT.lookup_dst table dst in
  let slow = FT.lookup_dst_linear table dst in
  if name_of fast <> name_of slow then
    Alcotest.failf "lookup_dst disagrees on %012x: trie=%s linear=%s" dst (name_of fast)
      (name_of slow)

let check_frame_agreement table frame =
  let slow = FT.lookup_linear table frame in
  let fast = FT.lookup table frame in
  if name_of fast <> name_of slow then
    Alcotest.failf "lookup disagrees on %a: trie=%s linear=%s" Netcore.Mac_addr.pp
      frame.Netcore.Eth.dst (name_of fast) (name_of slow)

(* one differential run: [ops] mutations, agreement re-checked after every
   batch of mutations against random + adversarial destinations *)
let differential_run ~seed ~ops ~probes_per_batch =
  let p = Prng.create seed in
  let table = FT.create () in
  let groups = [ 1000; 1001; 1002 ] in
  List.iter (fun g -> FT.set_group table g [| 24; 25; 26; 27 |]) groups;
  let live_names = ref [] in
  let fresh = ref 0 in
  for op = 1 to ops do
    (match Prng.int p 10 with
     | 0 | 1 when !live_names <> [] ->
       (* remove an existing entry (sometimes a name never installed) *)
       let name =
         if Prng.int p 8 = 0 then "ghost" else Prng.pick p (Array.of_list !live_names)
       in
       FT.remove table name;
       live_names := List.filter (fun n -> n <> name) !live_names
     | 2 when !live_names <> [] ->
       (* replace under the same name: priority/match/action churn *)
       let name = Prng.pick p (Array.of_list !live_names) in
       FT.install table (random_entry p ~name ~groups)
     | 3 ->
       (* group edit: membership change, including emptying *)
       let g = Prng.pick p (Array.of_list groups) in
       let members = Array.init (Prng.int p 4) (fun i -> 24 + i) in
       FT.set_group table g members
     | _ ->
       let name = Printf.sprintf "e%d" !fresh in
       incr fresh;
       FT.install table (random_entry p ~name ~groups);
       live_names := name :: !live_names);
    if op mod 8 = 0 || op = ops then begin
      let adv = adversarial_dsts table in
      List.iter (fun dst -> check_dst_agreement table dst) adv;
      for _ = 1 to probes_per_batch do
        let dst =
          if Prng.int p 3 = 0 && adv <> [] then Prng.pick p (Array.of_list adv)
          else Prng.int p (1 lsl 48)
        in
        check_dst_agreement table dst;
        check_frame_agreement table (frame_for p dst)
      done
    end
  done;
  (* final sanity: introspection still serves the full sorted entry list *)
  Testutil.check_int "size = |entries|" (FT.size table) (List.length (FT.entries table))

let test_differential_deep () = differential_run ~seed:42 ~ops:400 ~probes_per_batch:40

let prop_differential =
  Testutil.prop "trie lookup = linear lookup (random tables)" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      differential_run ~seed ~ops:60 ~probes_per_batch:10;
      true)

let test_trie_tie_break () =
  (* equal priorities, overlapping prefixes: later installation wins,
     exactly like the sorted linear scan *)
  let table = FT.create () in
  let pmac = 0x001F07030001 in
  FT.install table
    { FT.name = "a"; priority = 70; mtch = FT.match_dst_prefix ~value:pmac ~mask:(prefix_mask 16);
      actions = [ FT.Output 1 ] };
  FT.install table
    { FT.name = "b"; priority = 70; mtch = FT.match_dst_prefix ~value:pmac ~mask:(prefix_mask 16);
      actions = [ FT.Output 2 ] };
  Testutil.check_string "later insertion wins" "b" (name_of (FT.lookup_dst table pmac));
  check_dst_agreement table pmac;
  (* a longer prefix at lower priority must lose to a shorter one at
     higher priority *)
  FT.install table
    { FT.name = "long-low"; priority = 10;
      mtch = FT.match_dst_prefix ~value:pmac ~mask:mac_mask; actions = [ FT.Output 3 ] };
  Testutil.check_string "priority beats prefix length" "b"
    (name_of (FT.lookup_dst table pmac));
  check_dst_agreement table pmac;
  FT.install table
    { FT.name = "long-high"; priority = 90;
      mtch = FT.match_dst_prefix ~value:pmac ~mask:mac_mask; actions = [ FT.Output 4 ] };
  Testutil.check_string "higher priority wins" "long-high"
    (name_of (FT.lookup_dst table pmac));
  check_dst_agreement table pmac

let test_trie_hit_counters () =
  let table = FT.create () in
  let pmac = 0x002A00010001 in
  FT.install table
    { FT.name = "host"; priority = 90;
      mtch = FT.match_dst_prefix ~value:pmac ~mask:mac_mask; actions = [ FT.Output 0 ] };
  let p = Prng.create 1 in
  let frame = frame_for p pmac in
  ignore (FT.lookup table frame);
  ignore (FT.lookup table frame);
  Testutil.check_int "fast path maintains hit counters" 2 (FT.hit_count table "host");
  ignore (FT.lookup_linear table frame);
  Testutil.check_int "reference lookup is pure" 2 (FT.hit_count table "host")

(* ---------------- update journal ---------------- *)

(* run [f] with the table's journal captured; returns the updates in
   emission order, with the subscription torn down again *)
let with_journal table f =
  let log = ref [] in
  FT.set_journal table (Some (fun u -> log := u :: !log));
  f ();
  FT.set_journal table None;
  List.rev !log

let show_updates us = String.concat "; " (List.map (Format.asprintf "%a" FT.pp_update) us)

let prefix_entry ?(name = "host") ?(priority = 90) ?(out = 0) ~len v =
  { FT.name; priority; mtch = FT.match_dst_prefix ~value:v ~mask:(prefix_mask len);
    actions = [ FT.Output out ] }

(* every mutation journals exactly the updates the incremental verifier
   keys its class invalidation on, with masked-prefix provenance *)
let test_journal_hooks () =
  let table = FT.create () in
  let v = 0x001F07030001 in
  let expect what got want =
    if got <> want then
      Alcotest.failf "%s: journalled [%s], expected [%s]" what (show_updates got)
        (show_updates want)
  in
  expect "fresh install carries its exact prefix"
    (with_journal table (fun () -> FT.install table (prefix_entry ~len:48 v)))
    [ FT.Installed { name = "host"; prefix = Some (v, 48) } ];
  expect "same-prefix replacement is one install, no remove"
    (with_journal table (fun () -> FT.install table (prefix_entry ~len:48 ~out:1 v)))
    [ FT.Installed { name = "host"; prefix = Some (v, 48) } ];
  expect "replacement that moved prefixes vacates the old one first"
    (with_journal table (fun () -> FT.install table (prefix_entry ~len:16 v)))
    [ FT.Removed { name = "host"; prefix = Some (v, 48) };
      FT.Installed { name = "host"; prefix = Some (v land prefix_mask 16, 16) } ];
  expect "removal reports the vacated prefix"
    (with_journal table (fun () -> FT.remove table "host"))
    [ FT.Removed { name = "host"; prefix = Some (v land prefix_mask 16, 16) } ];
  expect "removing an absent name is silent"
    (with_journal table (fun () -> FT.remove table "ghost"))
    [];
  expect "non-prefix matches are journalled as residual"
    (with_journal table (fun () ->
         FT.install table
           { FT.name = "resid"; priority = 50;
             mtch =
               { (FT.match_dst_prefix ~value:v ~mask:(prefix_mask 16)) with
                 FT.ethertype = Some 0x0800 };
             actions = [ FT.Output 2 ] }))
    [ FT.Installed { name = "resid"; prefix = None } ];
  expect "a full wildcard indexes at the trie root"
    (with_journal table (fun () ->
         FT.install table
           { FT.name = "default"; priority = 1; mtch = FT.match_any; actions = [ FT.Drop ] }))
    [ FT.Installed { name = "default"; prefix = Some (0, 0) } ];
  expect "group edits journal the group id"
    (with_journal table (fun () -> FT.set_group table 7 [| 1; 2 |]))
    [ FT.Group_changed { group = 7 } ];
  expect "clear journals one wholesale wipe"
    (with_journal table (fun () -> FT.clear table))
    [ FT.Cleared ];
  (* unsubscribing really silences the stream *)
  FT.set_journal table (Some (fun u -> Alcotest.failf "fired after unsubscribe: %s" (show_updates [ u ])));
  FT.set_journal table None;
  FT.install table (prefix_entry ~len:48 v)

(* ---------------- codec differential fuzz ---------------- *)

open Netcore

let gen_frame : Eth.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let mac = map (fun v -> Mac_addr.of_int v) (int_bound ((1 lsl 48) - 1)) in
  let ip = map (fun v -> Ipv4_addr.of_int v) (int_bound 0xFFFFFF) in
  let arp =
    let* sender_mac = mac in
    let* sender_ip = ip in
    let* target_ip = ip in
    let* reply = bool in
    if reply then
      let* target_mac = mac in
      return
        (Eth.Arp
           { Arp.op = Arp.Reply; sender_mac; sender_ip; target_mac; target_ip })
    else return (Eth.Arp (Arp.request ~sender_mac ~sender_ip ~target_ip))
  in
  let udp =
    let* s = ip in
    let* d = ip in
    let* fl = int_bound 0xFFFF in
    let* seq = int_bound 1_000_000 in
    let* len = int_range 12 1400 in
    return
      (Eth.Ipv4
         (Ipv4_pkt.udp ~src:s ~dst:d (Udp.make ~flow_id:fl ~app_seq:seq ~payload_len:len ())))
  in
  let tcp =
    let* s = ip in
    let* d = ip in
    let* seq = int_bound 0xFFFFFF in
    let* ack = int_bound 0xFFFFFF in
    let* len = int_bound 1400 in
    let* syn = bool in
    let* ackf = bool in
    return
      (Eth.Ipv4
         (Ipv4_pkt.tcp ~src:s ~dst:d
            (Tcp_seg.make
               ~flags:{ Tcp_seg.syn; ack = ackf; fin = false; rst = false }
               ~seq ~ack_num:ack ~payload_len:len ())))
  in
  let ldp =
    let* swid = int_bound 0xFFFF in
    let* port = int_bound 63 in
    return (Eth.Ldp (Ldp_msg.initial ~switch_id:swid ~out_port:port))
  in
  let icmp =
    let* ident = int_bound 0xFFFF in
    let* seq = int_bound 0xFFFF in
    let* len = int_bound 200 in
    let* req = bool in
    return
      (Eth.Ipv4
         (Ipv4_pkt.icmp ~src:(Ipv4_addr.of_int 1) ~dst:(Ipv4_addr.of_int 2)
            (if req then Icmp.Echo_request { ident; seq; payload_len = len }
             else Icmp.Echo_reply { ident; seq; payload_len = len })))
  in
  let raw =
    (* len >= 46 so the payload reaches the Ethernet pad floor: below it
       the decoder cannot tell payload from padding (pre-existing codec
       property, same for fast and reference paths) *)
    let* len = int_range 46 500 in
    return (Eth.Raw { ethertype = 0x7777; len })
  in
  let* payload = oneof [ arp; udp; tcp; ldp; icmp; raw ] in
  let* d = mac in
  let* s = mac in
  let* vlan = opt (int_range 1 4094) in
  return (Eth.make ?vlan ~dst:d ~src:s payload)

let prop_fast_encode_identical =
  Testutil.prop "fast encode = reference encode (byte-identical)" ~count:400 gen_frame
    (fun f -> Bytes.equal (Codec.encode f) (Codec.encode_ref f))

let prop_fast_roundtrip =
  Testutil.prop "decode (fast encode) = id" ~count:400 gen_frame (fun f ->
      match Codec.decode (Codec.encode f) with
      | Ok f' -> Eth.equal f f'
      | Error _ -> false)

let prop_crc_fast_equals_ref =
  Testutil.prop "crc32_fast = crc32 (any slice)" ~count:300
    QCheck2.Gen.(pair (list_size (int_bound 100) (int_bound 255)) (int_bound 7))
    (fun (byte_list, off) ->
      let b =
        Bytes.init (List.length byte_list) (fun i -> Char.chr (List.nth byte_list i))
      in
      let off = min off (Bytes.length b) in
      let len = Bytes.length b - off in
      Codec.crc32_fast b off len = Codec.crc32 b off len)

let prop_corrupted_fcs_rejected =
  Testutil.prop "bit flips rejected identically by fast and ref decode" ~count:300
    QCheck2.Gen.(pair gen_frame (pair (int_bound 10_000) (int_bound 7)))
    (fun (f, (pos, bit)) ->
      let b = Codec.encode f in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match (Codec.decode b, Codec.decode_ref b) with
      | Error a, Error b -> a = b
      | Ok a, Ok b -> Eth.equal a b (* flip landed in a don't-care bit? impossible with FCS *)
      | _ -> false)

let prop_truncation_rejected =
  Testutil.prop "truncated frames rejected" ~count:200
    QCheck2.Gen.(pair gen_frame (int_range 1 63))
    (fun (f, cut) ->
      let b = Codec.encode f in
      let keep = Bytes.length b - cut in
      let t = Bytes.sub b 0 keep in
      Result.is_error (Codec.decode t) && Result.is_error (Codec.decode_ref t))

let test_decode_agreement_on_garbage () =
  let p = Prng.create 7 in
  for _ = 1 to 500 do
    let len = Prng.int p 150 in
    let b = Bytes.init len (fun _ -> Char.chr (Prng.int p 256)) in
    let fast = Codec.decode b and slow = Codec.decode_ref b in
    match (fast, slow) with
    | Ok a, Ok b when Eth.equal a b -> ()
    | Error _, Error _ -> ()
    | _ -> Alcotest.fail "fast and reference decode disagree on random bytes"
  done

(* ---------------- engine determinism regression ---------------- *)

open Portland

(* fingerprint of everything observable about a run: the full trace (times
   + order + text), event count, final clock, and every switch's table
   dump (including hit counters) *)
let scenario_fingerprint () =
  let fab = Testutil.converged_fabric ~k:4 ~seed:42 () in
  let mt = Fabric.tree fab in
  let cycle a b =
    ignore (Fabric.fail_link_between fab ~a ~b);
    Fabric.run_for fab (Time.ms 300);
    ignore (Fabric.recover_link_between fab ~a ~b);
    Fabric.run_for fab (Time.ms 300)
  in
  cycle mt.MR.edges.(0).(0) mt.MR.aggs.(0).(0);
  cycle mt.MR.aggs.(1).(0) mt.MR.cores.(0);
  let trace = Format.asprintf "%a" Trace.dump (Fabric.trace fab) in
  let tables =
    String.concat "\n---\n"
      (List.map
         (fun ag -> Format.asprintf "%a" Switchfab.Flow_table.pp (Switch_agent.table ag))
         (Fabric.agents fab))
  in
  ( trace,
    tables,
    Engine.events_processed (Fabric.engine fab),
    Engine.pending_count (Fabric.engine fab),
    Fabric.now fab )

let test_trace_determinism () =
  let t1, tb1, ev1, pend1, now1 = scenario_fingerprint () in
  let t2, tb2, ev2, pend2, now2 = scenario_fingerprint () in
  Testutil.check_string "event trace byte-identical" t1 t2;
  Testutil.check_string "switch tables byte-identical" tb1 tb2;
  Testutil.check_int "events processed" ev1 ev2;
  Testutil.check_int "pending events" pend1 pend2;
  Testutil.check_int "final clock" now1 now2

(* ---------------- control codec truncation robustness ---------------- *)

(* The control-plane codec must match the dataplane codec's contract: no
   frame, however mangled, may raise out of a decoder. These target the
   length-bearing late-tag messages — Coords_request (to-fm tag 10) and
   Host_restore (to-switch tag 9, with a u16-count binding list whose
   count can outlive a truncation cut). *)

let gen_restore_bindings =
  let open QCheck2.Gen in
  list_size (int_bound 4)
    (let* ip = map Netcore.Ipv4_addr.of_int (int_bound 0xFFFFFF) in
     let* pod = int_bound 15 in
     let* position = int_bound 15 in
     let* port = int_bound 15 in
     let* vmid = int_range 1 255 in
     let* edge_switch = int_bound 100_000 in
     return
       { Msg.ip;
         amac = Netcore.Mac_addr.of_int 0x020000000031;
         pmac = Pmac.make ~pod ~position ~port ~vmid;
         edge_switch })

let prop_truncated_coords_request_typed_error =
  Testutil.prop "truncated Coords_request is a typed error, not a raise" ~count:200
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1000))
    (fun (switch_id, cut) ->
      let b = Msg_codec.encode_to_fm (Msg.Coords_request { switch_id }) in
      let keep = 1 + (cut mod (Bytes.length b - 1)) in
      match Msg_codec.decode_to_fm (Bytes.sub b 0 keep) with
      | Error (Msg_codec.Truncated { tag = Some 10 }) -> true
      | _ -> false)

let prop_truncated_host_restore_typed_error =
  Testutil.prop "truncated Host_restore is a typed error, not a raise" ~count:200
    QCheck2.Gen.(pair gen_restore_bindings (int_bound 1000))
    (fun (bindings, cut) ->
      let b = Msg_codec.encode_to_switch (Msg.Host_restore { bindings }) in
      let keep = 1 + (cut mod (Bytes.length b - 1)) in
      match Msg_codec.decode_to_switch (Bytes.sub b 0 keep) with
      | Error (Msg_codec.Truncated { tag = Some 9 }) -> true
      | _ -> false)

let prop_padded_host_restore_typed_error =
  Testutil.prop "trailing bytes after Host_restore are a typed error" ~count:100
    QCheck2.Gen.(pair gen_restore_bindings (int_range 1 16))
    (fun (bindings, pad) ->
      let b = Msg_codec.encode_to_switch (Msg.Host_restore { bindings }) in
      match Msg_codec.decode_to_switch (Bytes.cat b (Bytes.make pad '\xAA')) with
      | Error (Msg_codec.Trailing_bytes n) -> n = pad
      | _ -> false)

let test_ctrl_decode_never_raises () =
  let p = Prng.create 11 in
  (* headless frames: the empty frame and every unknown tag byte *)
  (match Msg_codec.decode_to_fm Bytes.empty with
   | Error (Msg_codec.Truncated { tag = None }) -> ()
   | _ -> Alcotest.fail "empty frame should be Truncated{tag=None}");
  for tag = 11 to 255 do
    match Msg_codec.decode_to_fm (Bytes.make 1 (Char.chr tag)) with
    | Error (Msg_codec.Unknown_tag t) when t = tag -> ()
    | _ -> Alcotest.fail "unknown to-fm tag should be Unknown_tag"
  done;
  for tag = 11 to 255 do
    match Msg_codec.decode_to_switch (Bytes.make 1 (Char.chr tag)) with
    | Error (Msg_codec.Unknown_tag t) when t = tag -> ()
    | _ -> Alcotest.fail "unknown to-switch tag should be Unknown_tag"
  done;
  (* random garbage through both decoders: any result is fine, raising
     is not *)
  for _ = 1 to 2000 do
    let len = Prng.int p 200 in
    let b = Bytes.init len (fun _ -> Char.chr (Prng.int p 256)) in
    ignore (Msg_codec.decode_to_fm b);
    ignore (Msg_codec.decode_to_switch b)
  done

let () =
  Alcotest.run "fastpath"
    [ ( "flow-table differential",
        [ Alcotest.test_case "deep install/remove/replace sequence" `Quick
            test_differential_deep;
          Alcotest.test_case "tie-breaking across tiers" `Quick test_trie_tie_break;
          Alcotest.test_case "hit counters on the fast path" `Quick test_trie_hit_counters;
          prop_differential ] );
      ( "update journal",
        [ Alcotest.test_case "mutations journal with prefix provenance" `Quick
            test_journal_hooks ] );
      ( "codec differential",
        [ prop_fast_encode_identical;
          prop_fast_roundtrip;
          prop_crc_fast_equals_ref;
          prop_corrupted_fcs_rejected;
          prop_truncation_rejected;
          Alcotest.test_case "garbage decode agreement" `Quick
            test_decode_agreement_on_garbage ] );
      ( "control codec robustness",
        [ prop_truncated_coords_request_typed_error;
          prop_truncated_host_restore_typed_error;
          prop_padded_host_restore_typed_error;
          Alcotest.test_case "garbage never raises, errors are typed" `Quick
            test_ctrl_decode_never_raises ] );
      ( "engine determinism",
        [ Alcotest.test_case "k=4 failure/recovery trace is reproducible" `Quick
            test_trace_determinism ] ) ]
