open Portland
open Netcore
module FT = Switchfab.Flow_table

(* ---------------- Pmac ---------------- *)

let test_pmac_roundtrip () =
  let p = Pmac.make ~pod:3 ~position:1 ~port:0 ~vmid:7 in
  let p' = Pmac.of_mac (Pmac.to_mac p) in
  Testutil.check_bool "roundtrip" true (Pmac.equal p p');
  Testutil.check_string "pp" "pmac(3.1.0.7)" (Pmac.to_string p)

let prop_pmac_roundtrip =
  Testutil.prop "pmac roundtrip (random)"
    QCheck2.Gen.(tup4 (int_bound 255) (int_bound 255) (int_bound 255) (int_range 1 65535))
    (fun (pod, position, port, vmid) ->
      let p = Pmac.make ~pod ~position ~port ~vmid in
      Pmac.equal p (Pmac.of_mac (Pmac.to_mac p)))

let test_pmac_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Testutil.check_bool "pod 256" true
    (bad (fun () -> ignore (Pmac.make ~pod:256 ~position:0 ~port:0 ~vmid:1)));
  Testutil.check_bool "vmid 0 reserved" true
    (bad (fun () -> ignore (Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:0)));
  Testutil.check_bool "vmid 65536" true
    (bad (fun () -> ignore (Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:65536)))

let test_pmac_prefixes () =
  let p = Pmac.make ~pod:5 ~position:2 ~port:1 ~vmid:9 in
  let frame =
    Eth.make ~dst:(Pmac.to_mac p) ~src:(Mac_addr.of_int 1) (Eth.Raw { ethertype = 0x0800; len = 0 })
  in
  let hits mm = FT.matches { FT.match_any with FT.dst_mac = Some mm } frame in
  Testutil.check_bool "pod prefix" true (hits (Pmac.pod_prefix ~pod:5));
  Testutil.check_bool "wrong pod" false (hits (Pmac.pod_prefix ~pod:6));
  Testutil.check_bool "position prefix" true (hits (Pmac.position_prefix ~pod:5 ~position:2));
  Testutil.check_bool "wrong position" false (hits (Pmac.position_prefix ~pod:5 ~position:3));
  Testutil.check_bool "port prefix" true (hits (Pmac.port_prefix ~pod:5 ~position:2 ~port:1));
  Testutil.check_bool "exact" true (hits (Pmac.exact p));
  Testutil.check_bool "exact other vmid" false
    (hits (Pmac.exact (Pmac.make ~pod:5 ~position:2 ~port:1 ~vmid:10)))

let test_pmac_vs_amac_space () =
  let p = Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:1 in
  Testutil.check_bool "pmac in pmac space" true (Pmac.is_pmac (Pmac.to_mac p));
  let amac = Mac_addr.of_int (0x020000000000 lor 42) in
  Testutil.check_bool "amac not pmac" false (Pmac.is_pmac amac)

(* ---------------- Coords ---------------- *)

let test_coords_ldm_roundtrip () =
  let cases =
    [ Coords.Edge { pod = 2; position = 1 };
      Coords.Agg { pod = 3; stripe = 0 };
      Coords.Core { stripe = 1; member = 1 } ]
  in
  List.iter
    (fun c ->
      let pod, position = Coords.to_ldm_fields c in
      match Coords.of_ldm_fields ~level:(Coords.level c) ~pod ~position with
      | Some c' -> Testutil.check_bool "roundtrip" true (Coords.equal c c')
      | None -> Alcotest.fail "roundtrip lost coords")
    cases;
  Testutil.check_bool "partial fields" true
    (Coords.of_ldm_fields ~level:Ldp_msg.Edge ~pod:(Some 1) ~position:None = None)

(* ---------------- Fault sets ---------------- *)

let test_fault_set () =
  let s = Fault.Set.create () in
  let f1 = Fault.Edge_agg { pod = 0; edge_pos = 1; stripe = 0 } in
  Fault.Set.add s f1;
  Fault.Set.add s f1;
  Testutil.check_int "dedup" 1 (Fault.Set.cardinal s);
  Testutil.check_bool "mem" true (Fault.Set.mem s f1);
  Fault.Set.remove s f1;
  Testutil.check_int "removed" 0 (Fault.Set.cardinal s);
  let s2 = Fault.Set.of_list [ f1; Fault.Agg_core { pod = 1; stripe = 0; member = 1 } ] in
  Testutil.check_int "of_list" 2 (Fault.Set.cardinal s2);
  Fault.Set.clear s2;
  Testutil.check_int "cleared" 0 (Fault.Set.cardinal s2)

let test_stripe_reaches_pod () =
  let s = Fault.Set.create () in
  (* stripe 0 has 2 members; kill member 0 on the src side and member 1 on
     the dst side: no member works both sides *)
  Testutil.check_bool "all alive" true
    (Fault.Set.stripe_reaches_pod s ~members:2 ~src_pod:0 ~stripe:0 ~dst_pod:1);
  Fault.Set.add s (Fault.Agg_core { pod = 0; stripe = 0; member = 0 });
  Testutil.check_bool "one dead member, other works" true
    (Fault.Set.stripe_reaches_pod s ~members:2 ~src_pod:0 ~stripe:0 ~dst_pod:1);
  Fault.Set.add s (Fault.Agg_core { pod = 1; stripe = 0; member = 1 });
  Testutil.check_bool "crossing faults kill the stripe" false
    (Fault.Set.stripe_reaches_pod s ~members:2 ~src_pod:0 ~stripe:0 ~dst_pod:1);
  Testutil.check_bool "other stripe unaffected" true
    (Fault.Set.stripe_reaches_pod s ~members:2 ~src_pod:0 ~stripe:1 ~dst_pod:1)

(* ---------------- Uf ---------------- *)

let test_uf () =
  let u = Uf.create () in
  Testutil.check_bool "fresh singleton" true (Uf.find u 5 = 5);
  Uf.union u 1 2;
  Uf.union u 2 3;
  Testutil.check_bool "transitive" true (Uf.same u 1 3);
  Testutil.check_bool "separate" false (Uf.same u 1 5);
  Testutil.check_int "members" 3 (List.length (Uf.members u 1))

(* ---------------- Ctrl ---------------- *)

let test_ctrl_latency_and_routing () =
  let engine = Eventsim.Engine.create () in
  let ctrl = Ctrl.create engine ~latency:(Eventsim.Time.us 50) in
  let fm_got = ref [] in
  Ctrl.register_fm ctrl (fun ~from msg -> fm_got := (Eventsim.Engine.now engine, from, msg) :: !fm_got);
  let sw_got = ref 0 in
  Ctrl.register_switch ctrl 7 (fun _ -> incr sw_got);
  Ctrl.send_to_fm ctrl ~from:7 (Msg.Propose_position { switch_id = 7; position = 0 });
  Ctrl.send_to_switch ctrl 7 (Msg.Position_denied { position = 0 });
  Ctrl.send_to_switch ctrl 99 (Msg.Position_denied { position = 0 });
  Eventsim.Engine.run engine;
  (match !fm_got with
   | [ (t, from, _) ] ->
     Testutil.check_int "latency" (Eventsim.Time.us 50) t;
     Testutil.check_int "from" 7 from
   | _ -> Alcotest.fail "fm messages");
  Testutil.check_int "switch got" 1 !sw_got;
  Testutil.check_int "unknown dropped" 1 (Ctrl.dropped_count ctrl);
  Testutil.check_int "to_fm counter" 1 (Ctrl.to_fm_count ctrl);
  Testutil.check_int "to_switch counter" 1 (Ctrl.to_switch_count ctrl)

let test_ctrl_broadcast () =
  let engine = Eventsim.Engine.create () in
  let ctrl = Ctrl.create engine ~latency:(Eventsim.Time.us 1) in
  let got = ref 0 in
  Ctrl.register_switch ctrl 1 (fun _ -> incr got);
  Ctrl.register_switch ctrl 2 (fun _ -> incr got);
  Ctrl.broadcast_to_switches ctrl (Msg.Fault_update { faults = [] });
  Eventsim.Engine.run engine;
  Testutil.check_int "both received" 2 !got;
  Ctrl.unregister_switch ctrl 2;
  Ctrl.broadcast_to_switches ctrl (Msg.Fault_update { faults = [] });
  Eventsim.Engine.run engine;
  Testutil.check_int "after unregister" 3 !got

(* ---------------- Ldp state machine (standalone) ---------------- *)

let make_ldp ?(nports = 4) engine =
  let sent = ref [] in
  let events = ref [] in
  let ldp =
    Ldp.create engine Config.default ~switch_id:1 ~nports
      ~send:(fun ~port msg -> sent := (port, msg) :: !sent)
      ~notify:(fun ev -> events := ev :: !events) ()
  in
  (ldp, sent, events)

let ldm ~switch_id ~level ~pod ~position =
  { Ldp_msg.switch_id; level; pod; position; dir = Ldp_msg.Unknown_dir; out_port = 0 }

let test_ldp_edge_inference () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, events = make_ldp engine in
  Testutil.check_bool "no level yet" true (Ldp.level ldp = None);
  Ldp.on_host_frame ldp ~port:0;
  Testutil.check_bool "edge after host frame" true (Ldp.level ldp = Some Ldp_msg.Edge);
  Testutil.check_bool "event emitted" true
    (List.exists (function Ldp.Level_inferred Ldp_msg.Edge -> true | _ -> false) !events);
  Testutil.check_bool "host port recorded" true (Ldp.host_ports ldp = [ 0 ])

let test_ldp_agg_inference () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, _ = make_ldp engine in
  Ldp.on_ldm ldp ~port:0 (ldm ~switch_id:10 ~level:(Some Ldp_msg.Edge) ~pod:None ~position:None);
  Testutil.check_bool "agg after hearing edge" true (Ldp.level ldp = Some Ldp_msg.Aggregation)

let test_ldp_core_inference () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, _ = make_ldp engine in
  (* aggs on 3 of 4 ports: not yet core *)
  for p = 0 to 2 do
    Ldp.on_ldm ldp ~port:p
      (ldm ~switch_id:(10 + p) ~level:(Some Ldp_msg.Aggregation) ~pod:(Some p) ~position:(Some 0))
  done;
  Testutil.check_bool "not yet core" true (Ldp.level ldp = None);
  Ldp.on_ldm ldp ~port:3
    (ldm ~switch_id:13 ~level:(Some Ldp_msg.Aggregation) ~pod:(Some 3) ~position:(Some 0));
  Testutil.check_bool "core once all ports agg" true (Ldp.level ldp = Some Ldp_msg.Core)

let test_ldp_liveness () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, events = make_ldp engine in
  Ldp.start ldp;
  Ldp.on_ldm ldp ~port:0 (ldm ~switch_id:10 ~level:(Some Ldp_msg.Edge) ~pod:None ~position:None);
  (* silence past the timeout *)
  Eventsim.Engine.run ~until:(Eventsim.Time.ms 120) engine;
  Testutil.check_bool "port declared dead" true
    (List.exists (function Ldp.Port_dead { neighbor_id = 10; _ } -> true | _ -> false) !events);
  Testutil.check_bool "dead in port list" true (List.length (Ldp.dead_ports ldp) = 1);
  (* beacon resumes: recovery *)
  Ldp.on_ldm ldp ~port:0 (ldm ~switch_id:10 ~level:(Some Ldp_msg.Edge) ~pod:None ~position:None);
  Testutil.check_bool "recovered event" true
    (List.exists
       (function Ldp.Port_recovered { neighbor_id = 10; _ } -> true | _ -> false)
       !events);
  Testutil.check_int "no dead ports" 0 (List.length (Ldp.dead_ports ldp));
  Ldp.stop ldp

let test_ldp_beaconing () =
  let engine = Eventsim.Engine.create () in
  let ldp, sent, _ = make_ldp engine in
  Ldp.start ldp;
  Eventsim.Engine.run ~until:(Eventsim.Time.ms 25) engine;
  (* at least 2 rounds x 4 ports *)
  Testutil.check_bool "beacons sent" true (List.length !sent >= 8);
  Ldp.stop ldp;
  let n = List.length !sent in
  Eventsim.Engine.run ~until:(Eventsim.Time.ms 100) engine;
  Testutil.check_int "stopped" n (List.length !sent)

let test_ldp_coords_in_ldm () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, _ = make_ldp engine in
  Ldp.on_host_frame ldp ~port:0;
  Ldp.set_coords ldp (Coords.Edge { pod = 2; position = 1 });
  let msg = Ldp.current_ldm ldp ~out_port:3 in
  Testutil.check_bool "level" true (msg.Ldp_msg.level = Some Ldp_msg.Edge);
  Testutil.check_bool "pod" true (msg.Ldp_msg.pod = Some 2);
  Testutil.check_bool "position" true (msg.Ldp_msg.position = Some 1);
  Testutil.check_int "out port" 3 msg.Ldp_msg.out_port

let test_ldp_directions () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, _ = make_ldp engine in
  (* an edge switch: host port faces Down, agg-facing port faces Up *)
  Ldp.on_host_frame ldp ~port:0;
  Ldp.on_ldm ldp ~port:2
    (ldm ~switch_id:20 ~level:(Some Ldp_msg.Aggregation) ~pod:(Some 0) ~position:(Some 0));
  Ldp.set_coords ldp (Coords.Edge { pod = 0; position = 0 });
  Testutil.check_bool "host port is down" true
    ((Ldp.current_ldm ldp ~out_port:0).Ldp_msg.dir = Ldp_msg.Down);
  Testutil.check_bool "agg port is up" true
    ((Ldp.current_ldm ldp ~out_port:2).Ldp_msg.dir = Ldp_msg.Up);
  Testutil.check_bool "unknown port direction" true
    ((Ldp.current_ldm ldp ~out_port:3).Ldp_msg.dir = Ldp_msg.Unknown_dir)

let test_ldp_view_changed_dedup () =
  let engine = Eventsim.Engine.create () in
  let ldp, _, events = make_ldp engine in
  let m = ldm ~switch_id:10 ~level:(Some Ldp_msg.Edge) ~pod:(Some 1) ~position:(Some 0) in
  Ldp.on_ldm ldp ~port:0 m;
  let count1 =
    List.length (List.filter (function Ldp.View_changed -> true | _ -> false) !events)
  in
  Ldp.on_ldm ldp ~port:0 m;
  let count2 =
    List.length (List.filter (function Ldp.View_changed -> true | _ -> false) !events)
  in
  Testutil.check_int "identical LDM does not re-notify" count1 count2

(* ---------------- Fabric manager (driven over ctrl) ---------------- *)

let fm_fixture () =
  let engine = Eventsim.Engine.create () in
  let ctrl = Ctrl.create engine ~latency:(Eventsim.Time.us 10) in
  let spec = Topology.Fattree.spec ~k:4 in
  let fm = Fabric_manager.create engine Config.default ctrl ~spec in
  (engine, ctrl, fm)

let report ~switch_id ~level ~neighbors =
  Msg.Neighbor_report { switch_id; level = Some level; neighbors; host_ports = [] }

let test_fm_pod_assignment () =
  let engine, ctrl, fm = fm_fixture () in
  let inbox = Hashtbl.create 8 in
  List.iter
    (fun id ->
      Ctrl.register_switch ctrl id (fun m ->
          Hashtbl.replace inbox id (m :: (try Hashtbl.find inbox id with Not_found -> []))))
    [ 100; 101; 200 ];
  (* two edges sharing one agg: same pod *)
  Ctrl.send_to_fm ctrl ~from:100
    (report ~switch_id:100 ~level:Ldp_msg.Edge
       ~neighbors:[ (2, 200, Some Ldp_msg.Aggregation) ]);
  Ctrl.send_to_fm ctrl ~from:200
    (report ~switch_id:200 ~level:Ldp_msg.Aggregation
       ~neighbors:[ (0, 100, Some Ldp_msg.Edge); (1, 101, Some Ldp_msg.Edge) ]);
  Ctrl.send_to_fm ctrl ~from:101
    (report ~switch_id:101 ~level:Ldp_msg.Edge
       ~neighbors:[ (2, 200, Some Ldp_msg.Aggregation) ]);
  Ctrl.send_to_fm ctrl ~from:100 (Msg.Propose_position { switch_id = 100; position = 0 });
  Ctrl.send_to_fm ctrl ~from:101 (Msg.Propose_position { switch_id = 101; position = 1 });
  Eventsim.Engine.run engine;
  (match (Fabric_manager.switch_coords fm 100, Fabric_manager.switch_coords fm 101) with
   | Some (Coords.Edge e1), Some (Coords.Edge e2) ->
     Testutil.check_int "same pod" e1.pod e2.pod;
     Testutil.check_bool "distinct positions" true (e1.position <> e2.position)
   | _ -> Alcotest.fail "edges not assigned")

let test_fm_position_collision () =
  let engine, ctrl, fm = fm_fixture () in
  let denied = ref 0 in
  Ctrl.register_switch ctrl 100 (fun _ -> ());
  Ctrl.register_switch ctrl 101 (fun m ->
      match m with Msg.Position_denied _ -> incr denied | _ -> ());
  Ctrl.register_switch ctrl 200 (fun _ -> ());
  Ctrl.send_to_fm ctrl ~from:100
    (report ~switch_id:100 ~level:Ldp_msg.Edge ~neighbors:[ (2, 200, Some Ldp_msg.Aggregation) ]);
  Ctrl.send_to_fm ctrl ~from:200
    (report ~switch_id:200 ~level:Ldp_msg.Aggregation
       ~neighbors:[ (0, 100, Some Ldp_msg.Edge); (1, 101, Some Ldp_msg.Edge) ]);
  Ctrl.send_to_fm ctrl ~from:101
    (report ~switch_id:101 ~level:Ldp_msg.Edge ~neighbors:[ (2, 200, Some Ldp_msg.Aggregation) ]);
  Ctrl.send_to_fm ctrl ~from:100 (Msg.Propose_position { switch_id = 100; position = 0 });
  Ctrl.send_to_fm ctrl ~from:101 (Msg.Propose_position { switch_id = 101; position = 0 });
  Eventsim.Engine.run engine;
  Testutil.check_int "second proposal denied" 1 !denied;
  Testutil.check_bool "first granted" true (Fabric_manager.switch_coords fm 100 <> None)

let test_fm_arp_hit_and_miss () =
  let engine, ctrl, fm = fm_fixture () in
  let answers = ref [] in
  Ctrl.register_switch ctrl 100 (fun m ->
      match m with
      | Msg.Arp_answer { target_pmac; _ } -> answers := target_pmac :: !answers
      | _ -> ());
  let ip = Ipv4_addr.of_octets 10 0 0 2 in
  let pmac = Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:1 in
  Fabric_manager.insert_binding_for_test fm
    { Msg.ip; amac = Mac_addr.of_int 0x020000000001; pmac; edge_switch = 100 };
  let q target =
    Msg.Arp_query
      { switch_id = 100;
        requester_ip = Ipv4_addr.of_octets 10 0 0 9;
        requester_pmac = Pmac.make ~pod:1 ~position:0 ~port:0 ~vmid:1;
        requester_port = 0;
        target_ip = target }
  in
  Ctrl.send_to_fm ctrl ~from:100 (q ip);
  Ctrl.send_to_fm ctrl ~from:100 (q (Ipv4_addr.of_octets 10 9 9 9));
  Eventsim.Engine.run engine;
  let c = Fabric_manager.counters fm in
  Testutil.check_int "queries" 2 c.Fabric_manager.arp_queries;
  Testutil.check_int "hits" 1 c.Fabric_manager.arp_hits;
  Testutil.check_int "misses" 1 c.Fabric_manager.arp_misses;
  (match !answers with
   | [ a ] -> Testutil.check_bool "answer pmac" true (a = Some pmac)
   | other -> Alcotest.failf "expected 1 answer, got %d" (List.length other))

let test_fm_migration_invalidate () =
  let engine, ctrl, fm = fm_fixture () in
  let invalidations = ref [] in
  Ctrl.register_switch ctrl 100 (fun m ->
      match m with
      | Msg.Invalidate_pmac { old_pmac; new_pmac; _ } ->
        invalidations := (old_pmac, new_pmac) :: !invalidations
      | _ -> ());
  Ctrl.register_switch ctrl 101 (fun _ -> ());
  let ip = Ipv4_addr.of_octets 10 0 0 2 in
  let amac = Mac_addr.of_int 0x020000000001 in
  let p1 = Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:1 in
  let p2 = Pmac.make ~pod:1 ~position:0 ~port:0 ~vmid:1 in
  Ctrl.send_to_fm ctrl ~from:100
    (Msg.Host_announce { Msg.ip; amac; pmac = p1; edge_switch = 100 });
  Eventsim.Engine.run engine;
  Ctrl.send_to_fm ctrl ~from:101
    (Msg.Host_announce { Msg.ip; amac; pmac = p2; edge_switch = 101 });
  Eventsim.Engine.run engine;
  Testutil.check_int "migration counted" 1 (Fabric_manager.counters fm).Fabric_manager.migrations;
  (match !invalidations with
   | [ (old_pmac, new_pmac) ] ->
     Testutil.check_bool "old pmac" true (Pmac.equal old_pmac p1);
     Testutil.check_bool "new pmac" true (Pmac.equal new_pmac p2)
   | other -> Alcotest.failf "expected 1 invalidation, got %d" (List.length other));
  Testutil.check_bool "mapping updated" true (Fabric_manager.resolve fm ip = Some p2)

(* ---------------- control-protocol codec ---------------- *)

let gen_pmac =
  QCheck2.Gen.map
    (fun (pod, position, port, vmid) -> Pmac.make ~pod ~position ~port ~vmid)
    QCheck2.Gen.(tup4 (int_bound 255) (int_bound 255) (int_bound 255) (int_range 1 65535))

let gen_coords =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map
        (fun (a, b) -> Coords.Edge { pod = a; position = b })
        QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000));
      QCheck2.Gen.map
        (fun (a, b) -> Coords.Agg { pod = a; stripe = b })
        QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000));
      QCheck2.Gen.map
        (fun (a, b) -> Coords.Core { stripe = a; member = b })
        QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000)) ]

let gen_fault =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map
        (fun (a, b, c) -> Fault.Edge_agg { pod = a; edge_pos = b; stripe = c })
        QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 255));
      QCheck2.Gen.map
        (fun (a, b, c) -> Fault.Agg_core { pod = a; stripe = b; member = c })
        QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 255)) ]

let gen_ip = QCheck2.Gen.map (fun v -> Ipv4_addr.of_int v) QCheck2.Gen.(int_bound 0xFFFFFF)

let gen_to_fm : Msg.to_fm QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [ (let* switch_id = int_bound 100_000 in
       let* level = oneof [ return None; return (Some Ldp_msg.Edge) ] in
       let* neighbors =
         list_size (int_bound 8)
           (triple (int_bound 64) (int_bound 100_000)
              (oneof [ return None; return (Some Ldp_msg.Aggregation) ]))
       in
       let* host_ports = list_size (int_bound 8) (int_bound 64) in
       return (Msg.Neighbor_report { switch_id; level; neighbors; host_ports }));
      (let* switch_id = int_bound 100_000 in
       let* position = int_bound 255 in
       return (Msg.Propose_position { switch_id; position }));
      (let* switch_id = int_bound 100_000 in
       let* requester_ip = gen_ip in
       let* requester_pmac = gen_pmac in
       let* requester_port = int_bound 64 in
       let* target_ip = gen_ip in
       return
         (Msg.Arp_query { switch_id; requester_ip; requester_pmac; requester_port; target_ip }));
      (let* ip = gen_ip in
       let* pmac = gen_pmac in
       let* edge_switch = int_bound 100_000 in
       return
         (Msg.Host_announce
            { Msg.ip; amac = Mac_addr.of_int 0x020000000042; pmac; edge_switch }));
      (let* switch_id = int_bound 100_000 in
       let* coords = gen_coords in
       return (Msg.Reclaim_coords { switch_id; coords }));
      (let* switch_id = int_bound 100_000 in
       return (Msg.Coords_request { switch_id })) ]

let gen_to_switch : Msg.to_switch QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [ map (fun c -> Msg.Assign_coords c) gen_coords;
      map (fun position -> Msg.Position_denied { position }) (int_bound 255);
      (let* target_ip = gen_ip in
       let* target_pmac = oneof [ return None; map (fun p -> Some p) gen_pmac ] in
       let* requester_ip = gen_ip in
       let* requester_port = int_bound 64 in
       let* gen = int_bound 100_000 in
       return (Msg.Arp_answer { target_ip; target_pmac; requester_ip; requester_port; gen }));
      map (fun faults -> Msg.Fault_update { faults }) (list_size (int_bound 10) gen_fault);
      (let* group = gen_ip in
       let* out_ports = list_size (int_bound 10) (int_bound 64) in
       return (Msg.Mcast_program { group; out_ports }));
      return Msg.Resync_request;
      (let* bindings =
         list_size (int_bound 6)
           (let* ip = gen_ip in
            let* pmac = gen_pmac in
            let* edge_switch = int_bound 100_000 in
            return { Msg.ip; amac = Mac_addr.of_int 0x020000000017; pmac; edge_switch })
       in
       return (Msg.Host_restore { bindings }));
      map (fun gen -> Msg.Arp_gen { gen }) (int_bound 100_000) ]

let prop_msg_to_fm_roundtrip =
  Testutil.prop "control codec roundtrip (to fm)" ~count:300 gen_to_fm (fun m ->
      match Msg_codec.decode_to_fm (Msg_codec.encode_to_fm m) with
      | Ok m' -> m = m'
      | Error _ -> false)

let prop_msg_to_switch_roundtrip =
  Testutil.prop "control codec roundtrip (to switch)" ~count:300 gen_to_switch (fun m ->
      match Msg_codec.decode_to_switch (Msg_codec.encode_to_switch m) with
      | Ok m' -> m = m'
      | Error _ -> false)

let test_msg_codec_errors () =
  Testutil.check_bool "empty" true (Result.is_error (Msg_codec.decode_to_fm (Bytes.create 0)));
  Testutil.check_bool "bad tag" true
    (Result.is_error (Msg_codec.decode_to_fm (Bytes.make 8 '\xee')));
  (* trailing junk rejected *)
  let good = Msg_codec.encode_to_switch Msg.Resync_request in
  let padded = Bytes.cat good (Bytes.make 1 '\x00') in
  Testutil.check_bool "trailing bytes" true (Result.is_error (Msg_codec.decode_to_switch padded))

let test_ctrl_byte_metering () =
  let engine = Eventsim.Engine.create () in
  let ctrl = Ctrl.create engine ~latency:(Eventsim.Time.us 1) in
  Ctrl.register_fm ctrl (fun ~from:_ _ -> ());
  let msg = Msg.Propose_position { switch_id = 7; position = 0 } in
  Ctrl.send_to_fm ctrl ~from:7 msg;
  Eventsim.Engine.run engine;
  Testutil.check_int "bytes metered" (Msg_codec.to_fm_wire_len msg) (Ctrl.to_fm_bytes ctrl)

(* ---------------- Config ---------------- *)

let test_config_defaults () =
  let c = Config.default in
  Testutil.check_int "ldm period" (Eventsim.Time.ms 10) c.Config.ldm_period;
  Testutil.check_int "ldm timeout" (Eventsim.Time.ms 50) c.Config.ldm_timeout;
  Testutil.check_bool "forward_stale off" false c.Config.forward_stale;
  let s = Format.asprintf "%a" Config.pp c in
  Testutil.check_bool "pp mentions period" true
    (String.length s > 0 && String.contains s '=')

let () =
  Alcotest.run "portland-units"
    [ ( "pmac",
        [ Alcotest.test_case "roundtrip" `Quick test_pmac_roundtrip;
          Alcotest.test_case "validation" `Quick test_pmac_validation;
          Alcotest.test_case "prefix masks" `Quick test_pmac_prefixes;
          Alcotest.test_case "address spaces" `Quick test_pmac_vs_amac_space;
          prop_pmac_roundtrip ] );
      ("coords", [ Alcotest.test_case "ldm fields roundtrip" `Quick test_coords_ldm_roundtrip ]);
      ( "faults",
        [ Alcotest.test_case "set operations" `Quick test_fault_set;
          Alcotest.test_case "stripe reachability" `Quick test_stripe_reaches_pod ] );
      ("union-find", [ Alcotest.test_case "basics" `Quick test_uf ]);
      ( "control network",
        [ Alcotest.test_case "latency & routing" `Quick test_ctrl_latency_and_routing;
          Alcotest.test_case "broadcast" `Quick test_ctrl_broadcast ] );
      ( "ldp",
        [ Alcotest.test_case "edge inference" `Quick test_ldp_edge_inference;
          Alcotest.test_case "aggregation inference" `Quick test_ldp_agg_inference;
          Alcotest.test_case "core inference" `Quick test_ldp_core_inference;
          Alcotest.test_case "liveness detector" `Quick test_ldp_liveness;
          Alcotest.test_case "beaconing" `Quick test_ldp_beaconing;
          Alcotest.test_case "coords advertised" `Quick test_ldp_coords_in_ldm;
          Alcotest.test_case "port directions" `Quick test_ldp_directions;
          Alcotest.test_case "view change dedup" `Quick test_ldp_view_changed_dedup ] );
      ( "fabric manager",
        [ Alcotest.test_case "pod assignment" `Quick test_fm_pod_assignment;
          Alcotest.test_case "position collision" `Quick test_fm_position_collision;
          Alcotest.test_case "arp hit & miss" `Quick test_fm_arp_hit_and_miss;
          Alcotest.test_case "migration invalidation" `Quick test_fm_migration_invalidate ] );
      ( "control codec",
        [ prop_msg_to_fm_roundtrip;
          prop_msg_to_switch_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_msg_codec_errors;
          Alcotest.test_case "byte metering" `Quick test_ctrl_byte_metering ] );
      ("config", [ Alcotest.test_case "defaults" `Quick test_config_defaults ]) ]
