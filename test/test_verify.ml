(* Tests of the static dataplane verifier: a healthy fabric (before and
   after a failure/recovery cycle, at k=4 and k=6) verifies clean, and
   each seeded corruption — wrong-port blackhole, forwarding loop, stale
   fault-matrix entry — is detected with switch/entry provenance. *)

open Portland
open Eventsim
module Verify = Portland_verify.Verify
module FT = Switchfab.Flow_table
module MR = Topology.Multirooted

let binding_of fab ~pod ~edge ~slot =
  let h = Fabric.host fab ~pod ~edge ~slot in
  match Fabric_manager.lookup_binding (Fabric.fabric_manager fab) (Host_agent.ip h) with
  | Some b -> b
  | None -> Alcotest.fail "host not registered at the fabric manager"

let exact_match_of (b : Msg.host_binding) =
  FT.match_dst_prefix
    ~value:(Netcore.Mac_addr.to_int (Pmac.to_mac b.Msg.pmac))
    ~mask:0xFFFFFFFFFFFF

(* ---------------- clean fabrics ---------------- *)

let lifecycle_stays_clean k () =
  let fab = Testutil.converged_fabric ~k () in
  let r = Verify.run fab in
  Testutil.check_bool "healthy fabric verifies" true (Verify.ok r);
  Testutil.check_int "one class per host" (Topology.Fattree.num_hosts ~k) r.Verify.classes_checked;
  Testutil.check_int "every switch audited" (Topology.Fattree.num_switches ~k)
    r.Verify.switches_checked;
  (* a failure/recovery cycle on an edge-agg and an agg-core link *)
  let mt = Fabric.tree fab in
  let cycle a b =
    Testutil.check_bool "link existed" true (Fabric.fail_link_between fab ~a ~b);
    Fabric.run_for fab (Time.ms 300);
    Testutil.assert_verified ~msg:"after failure" fab;
    Testutil.check_bool "link recovered" true (Fabric.recover_link_between fab ~a ~b);
    Fabric.run_for fab (Time.ms 300);
    Testutil.assert_verified ~msg:"after recovery" fab
  in
  cycle mt.MR.edges.(0).(0) mt.MR.aggs.(0).(0);
  cycle mt.MR.aggs.(1).(0) mt.MR.cores.(0)

let test_clean_k4 () = lifecycle_stays_clean 4 ()
let test_clean_k6 () = lifecycle_stays_clean 6 ()

(* Cold-reboot coverage: crash a switch, reboot it, and run the full
   static audit with no traffic in between — the rebuilt flow table,
   re-granted coordinates and replayed host bindings must verify purely
   from the fabric manager's soft state. One edge (host bindings and
   PMAC leaves restored) and one agg (ECMP groups recomputed). *)
let reboot_then_verify k sw_of () =
  let fab = Testutil.converged_fabric ~k () in
  let sw = sw_of (Fabric.tree fab) in
  Fabric.fail_switch fab sw;
  Fabric.run_for fab (Time.ms 300);
  Fabric.recover_switch fab sw;
  Fabric.run_for fab (Time.ms 500);
  Testutil.check_bool "reconverged after cold reboot" true (Fabric.await_convergence fab);
  let r = Verify.run fab in
  if not (Verify.ok r) then
    Alcotest.failf "verify after cold reboot of switch %d:@\n%a" sw Verify.pp_report r;
  Testutil.check_int "every switch audited again" (Topology.Fattree.num_switches ~k)
    r.Verify.switches_checked;
  Testutil.check_int "fault matrix drained" 0
    (List.length (Fabric_manager.fault_set (Fabric.fabric_manager fab)))

let test_reboot_edge_then_verify () = reboot_then_verify 4 (fun mt -> mt.MR.edges.(0).(0)) ()
let test_reboot_agg_then_verify () = reboot_then_verify 4 (fun mt -> mt.MR.aggs.(1).(1)) ()

(* The verifier audits tables through [FT.entries]/[FT.groups]
   introspection, which must describe exactly what the trie-backed fast
   path serves: on a converged fabric, every switch must answer
   [lookup_dst] identically to the linear reference for every host PMAC,
   the broadcast address, and a spray of random MACs. *)
let trie_matches_linear_on_fabric k () =
  let fab = Testutil.converged_fabric ~k () in
  let fm = Fabric.fabric_manager fab in
  let pmacs =
    List.filter_map
      (fun h ->
        Option.map
          (fun (b : Msg.host_binding) -> Netcore.Mac_addr.to_int (Pmac.to_mac b.Msg.pmac))
          (Fabric_manager.lookup_binding fm (Host_agent.ip h)))
      (Fabric.hosts fab)
  in
  Testutil.check_int "all hosts bound" (Topology.Fattree.num_hosts ~k) (List.length pmacs);
  let p = Prng.create 99 in
  let probes =
    (0xFFFFFFFFFFFF :: pmacs)
    @ List.concat_map (fun m -> [ m lxor 1; m + 0x10000 ]) pmacs
    @ List.init 200 (fun _ -> Prng.int p (1 lsl 48))
  in
  let name = function Some (e : FT.entry) -> e.FT.name | None -> "<miss>" in
  List.iter
    (fun ag ->
      let table = Switch_agent.table ag in
      List.iter
        (fun dst ->
          let fast = name (FT.lookup_dst table dst) in
          let slow = name (FT.lookup_dst_linear table dst) in
          if fast <> slow then
            Alcotest.failf "switch %d: trie=%s linear=%s on %012x" (Switch_agent.switch_id ag)
              fast slow dst)
        probes)
    (Fabric.agents fab)

let test_trie_linear_agree_k4 () = trie_matches_linear_on_fabric 4 ()
let test_trie_linear_agree_k6 () = trie_matches_linear_on_fabric 6 ()

(* ---------------- seeded corruptions ---------------- *)

let test_wrong_port_detected () =
  let fab = Testutil.converged_fabric () in
  let b = binding_of fab ~pod:0 ~edge:0 ~slot:0 in
  let edge = b.Msg.edge_switch in
  let table = Switch_agent.table (Fabric.agent fab edge) in
  let name = Printf.sprintf "host:%d" (Netcore.Mac_addr.to_int (Pmac.to_mac b.Msg.pmac)) in
  (* re-point the host's exact-match entry at the neighbouring host port *)
  FT.install table
    { FT.name; priority = 90; mtch = exact_match_of b;
      actions = [ FT.Set_dst_mac b.Msg.amac; FT.Output ((b.Msg.pmac.Pmac.port + 1) mod 2) ] };
  let r = Verify.run fab in
  Testutil.check_bool "violations found" false (Verify.ok r);
  Testutil.check_bool "wrong delivery with provenance" true
    (List.exists
       (function
         | Verify.Wrong_delivery { switch; entry; _ } -> switch = edge && entry = name
         | _ -> false)
       r.Verify.violations)

let test_unwired_port_is_blackhole () =
  let fab = Testutil.converged_fabric ~spare_slots:[ (1, 0, 0) ] () in
  let b = binding_of fab ~pod:0 ~edge:0 ~slot:0 in
  let mt = Fabric.tree fab in
  (* point a class at the spare (unwired) host port of edge (1,0) *)
  let stray_edge = mt.MR.edges.(1).(0) in
  let table = Switch_agent.table (Fabric.agent fab stray_edge) in
  FT.install table
    { FT.name = "corrupt"; priority = 200; mtch = exact_match_of b;
      actions = [ FT.Output 0 ] };
  let r = Verify.run fab in
  Testutil.check_bool "detected" true
    (List.exists
       (function
         | Verify.Wrong_delivery { switch; entry; _ }
         | Verify.Blackhole { switch; entry = Some entry; _ } ->
           switch = stray_edge && entry = "corrupt"
         | _ -> false)
       r.Verify.violations)

let test_loop_detected () =
  let fab = Testutil.converged_fabric () in
  (* a class homed in pod 3, bounced between edge(0,0) and agg(0,0) *)
  let b = binding_of fab ~pod:3 ~edge:0 ~slot:0 in
  let mt = Fabric.tree fab in
  let edge = mt.MR.edges.(0).(0) and agg = mt.MR.aggs.(0).(0) in
  let up_port = 2 (* k=4: hosts_per_edge .. face aggs, in position order *)
  and down_port = 0 (* agg ports 0.. face edges by position *) in
  FT.install (Switch_agent.table (Fabric.agent fab edge))
    { FT.name = "evil-up"; priority = 200; mtch = exact_match_of b;
      actions = [ FT.Output up_port ] };
  FT.install (Switch_agent.table (Fabric.agent fab agg))
    { FT.name = "evil-down"; priority = 200; mtch = exact_match_of b;
      actions = [ FT.Output down_port ] };
  let r = Verify.run fab in
  Testutil.check_bool "loop found" true
    (List.exists
       (function
         | Verify.Loop { cycle; pmac } ->
           Pmac.equal pmac b.Msg.pmac && List.mem edge cycle && List.mem agg cycle
         | _ -> false)
       r.Verify.violations)

let test_stale_fault_detected () =
  let fab = Testutil.converged_fabric () in
  (* fabricate a fault for a link that is demonstrably alive *)
  let mt = Fabric.tree fab in
  let pod, edge_pos =
    match Switch_agent.coords (Fabric.agent fab mt.MR.edges.(0).(0)) with
    | Some (Coords.Edge { pod; position }) -> (pod, position)
    | _ -> Alcotest.fail "edge has no coordinates"
  in
  let stripe =
    match Switch_agent.coords (Fabric.agent fab mt.MR.aggs.(0).(0)) with
    | Some (Coords.Agg { stripe; _ }) -> stripe
    | _ -> Alcotest.fail "agg has no coordinates"
  in
  let stale = Fault.Edge_agg { pod; edge_pos; stripe } in
  let r = Verify.run ~faults:[ stale ] fab in
  Testutil.check_bool "stale fault flagged" true
    (List.exists
       (function Verify.Stale_fault { fault } -> Fault.equal fault stale | _ -> false)
       r.Verify.violations);
  Testutil.check_int "one fault audited" 1 r.Verify.faults_checked

let test_unknown_fault_coordinate () =
  let fab = Testutil.converged_fabric () in
  let bogus = Fault.Agg_core { pod = 0; stripe = 7; member = 9 } in
  let r = Verify.run ~faults:[ bogus ] fab in
  Testutil.check_bool "unknown coordinate flagged" true
    (List.exists
       (function Verify.Unknown_fault_link { fault; _ } -> Fault.equal fault bogus | _ -> false)
       r.Verify.violations)

let test_empty_group_detected () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let edge = mt.MR.edges.(2).(1) in
  let table = Switch_agent.table (Fabric.agent fab edge) in
  let b = binding_of fab ~pod:0 ~edge:0 ~slot:0 in
  FT.set_group table 999 [||];
  FT.install table
    { FT.name = "corrupt-group"; priority = 200; mtch = exact_match_of b;
      actions = [ FT.Group 999 ] };
  let r = Verify.run fab in
  Testutil.check_bool "empty group flagged" true
    (List.exists
       (function
         | Verify.Empty_group { switch; entry; group } ->
           switch = edge && entry = "corrupt-group" && group = 999
         | _ -> false)
       r.Verify.violations)

(* ---------------- incremental verification ---------------- *)

module VI = Verify.Incremental

(* the differential guarantee: the session's cached verdict must render to
   exactly the full run's canonical lines (and digest, which also covers
   the coverage counts) at any instant *)
let check_agrees ?(msg = "incremental = full") inc fab =
  let ir = VI.refresh inc in
  let fr = Verify.run fab in
  if Verify.canonical_lines ir <> Verify.canonical_lines fr then
    Alcotest.failf "%s:@.--- incremental ---@.%a--- full ---@.%a" msg Verify.pp_report ir
      Verify.pp_report fr;
  Testutil.check_string (msg ^ " (digest)") (Verify.digest_of_report fr)
    (Verify.digest_of_report ir)

let test_incremental_matches_full_when_clean () =
  let fab = Testutil.converged_fabric () in
  let inc = VI.attach fab in
  check_agrees inc fab;
  Testutil.check_bool "differential self-check" true (VI.check_against_full inc);
  ignore (VI.refresh inc);
  Testutil.check_int "a no-op refresh re-walks zero classes" 0 (VI.delta_classes inc);
  VI.detach inc

let test_incremental_localized_invalidation () =
  let fab = Testutil.converged_fabric () in
  let inc = VI.attach fab in
  ignore (VI.refresh inc);
  let b = binding_of fab ~pod:0 ~edge:0 ~slot:0 in
  let table = Switch_agent.table (Fabric.agent fab b.Msg.edge_switch) in
  let name = Printf.sprintf "host:%d" (Netcore.Mac_addr.to_int (Pmac.to_mac b.Msg.pmac)) in
  let orig =
    match FT.find_entry table name with
    | Some e -> e
    | None -> Alcotest.fail "host entry missing from its edge table"
  in
  (* corrupt one host's exact-match entry: only the matching class may
     re-walk, and the wrong port must be caught *)
  FT.install table
    { orig with
      FT.actions = [ FT.Set_dst_mac b.Msg.amac; FT.Output ((b.Msg.pmac.Pmac.port + 1) mod 2) ] };
  let r = VI.refresh inc in
  Testutil.check_bool "incremental catches the wrong port" false (Verify.ok r);
  Testutil.check_int "exactly the corrupted class re-walked" 1 (VI.delta_classes inc);
  check_agrees ~msg:"corrupted state" inc fab;
  FT.install table orig;
  let r = VI.refresh inc in
  Testutil.check_bool "clean again after the repair" true (Verify.ok r);
  Testutil.check_int "the repair re-walked one class" 1 (VI.delta_classes inc);
  check_agrees ~msg:"after repair" inc fab;
  VI.detach inc

let test_dead_edge_is_note_not_blackhole () =
  let fab = Testutil.converged_fabric () in
  let inc = VI.attach fab in
  let mt = Fabric.tree fab in
  let edge = mt.MR.edges.(0).(0) in
  Fabric.fail_switch fab edge;
  Fabric.run_for fab (Time.ms 400);
  let full = Verify.run fab in
  (* the stranded classes are legitimately gone: informational notes, not
     spurious "switch is down" blackholes *)
  if not (Verify.ok full) then
    Alcotest.failf "dead edge produced violations:@.%a" Verify.pp_report full;
  Testutil.check_int "one note per stranded host"
    (Fabric.spec fab).MR.hosts_per_edge (List.length full.Verify.notes);
  List.iter
    (fun (Verify.Unreachable_class { switch; _ }) ->
      Testutil.check_int "note names the dead edge" edge switch)
    full.Verify.notes;
  check_agrees ~msg:"mid-crash" inc fab;
  Fabric.recover_switch fab edge;
  Testutil.check_bool "reconverged after reboot" true (Fabric.await_convergence fab);
  let healed = VI.refresh inc in
  Testutil.check_bool "healed, notes drained" true
    (Verify.ok healed && healed.Verify.notes = []);
  check_agrees ~msg:"after reboot" inc fab;
  VI.detach inc

(* drive a seeded failure/recovery/corruption script, re-asserting the
   differential guarantee after every step — including non-quiescent
   points mid-recomputation. [topo] picks the family member ("plain",
   "ab", "two-layer"); under the agg-less leaf-spine, agg-targeting ops
   are remapped to their closest analogue (leaf uplinks go straight to
   the spines, so the uplink ops flap edge-core links, and agg crashes
   become edge crashes). *)
let differential_script ?(topo = "plain") ~k ~seed ~ops () =
  let family = Topology.Topo.Family.of_string ~k topo |> Result.get_ok in
  let fab = Testutil.converged_family ~seed family in
  let inc = VI.attach fab in
  let mt = Fabric.tree fab in
  let pods = Array.length mt.MR.edges in
  let epp = Array.length mt.MR.edges.(0) in
  let app = Array.length mt.MR.aggs.(0) in
  let ncores = Array.length mt.MR.cores in
  let hpe = (Fabric.spec fab).MR.hosts_per_edge in
  let p = Prng.create ((seed * 7) + 1) in
  let settle ms = Fabric.run_for fab (Time.ms ms) in
  for op = 1 to ops do
    let agree what = check_agrees ~msg:(Printf.sprintf "op %d: %s" op what) inc fab in
    let kind = Prng.int p 6 in
    let kind = if app > 0 then kind else (match kind with 1 -> 0 | 2 -> 3 | x -> x) in
    match kind with
    | 0 ->
      let a = mt.MR.edges.(Prng.int p pods).(Prng.int p epp)
      and b =
        if app > 0 then mt.MR.aggs.(Prng.int p pods).(Prng.int p app)
        else mt.MR.cores.(Prng.int p ncores)
      in
      if Fabric.fail_link_between fab ~a ~b then begin
        settle 300;
        agree "uplink down";
        ignore (Fabric.recover_link_between fab ~a ~b);
        settle 300;
        agree "uplink recovered"
      end
    | 1 ->
      let a = mt.MR.aggs.(Prng.int p pods).(Prng.int p app)
      and b = mt.MR.cores.(Prng.int p ncores) in
      if Fabric.fail_link_between fab ~a ~b then begin
        settle 300;
        agree "agg-core link down";
        ignore (Fabric.recover_link_between fab ~a ~b);
        settle 300;
        agree "agg-core link recovered"
      end
    | 2 ->
      let sw = mt.MR.aggs.(Prng.int p pods).(Prng.int p app) in
      Fabric.fail_switch fab sw;
      settle 300;
      agree "agg crashed";
      Fabric.recover_switch fab sw;
      Testutil.check_bool "reconverged after agg reboot" true (Fabric.await_convergence fab);
      agree "agg rebooted"
    | 3 ->
      let sw = mt.MR.edges.(Prng.int p pods).(Prng.int p epp) in
      Fabric.fail_switch fab sw;
      settle 300;
      agree "edge crashed";
      Fabric.recover_switch fab sw;
      Testutil.check_bool "reconverged after edge reboot" true (Fabric.await_convergence fab);
      agree "edge rebooted"
    | 4 ->
      let b =
        binding_of fab ~pod:(Prng.int p pods) ~edge:(Prng.int p epp) ~slot:(Prng.int p hpe)
      in
      let table = Switch_agent.table (Fabric.agent fab b.Msg.edge_switch) in
      let name = Printf.sprintf "host:%d" (Netcore.Mac_addr.to_int (Pmac.to_mac b.Msg.pmac)) in
      (match FT.find_entry table name with
       | None -> Alcotest.fail "host entry missing from its edge table"
       | Some orig ->
         FT.install table
           { orig with
             FT.actions =
               [ FT.Set_dst_mac b.Msg.amac; FT.Output ((b.Msg.pmac.Pmac.port + 1) mod hpe) ] };
         agree "host entry corrupted";
         FT.install table orig;
         agree "host entry repaired")
    | _ ->
      Fabric.restart_fabric_manager fab;
      settle 400;
      Testutil.check_bool "reconverged after fm restart" true (Fabric.await_convergence fab);
      agree "fm restarted"
  done;
  Testutil.check_bool "final differential self-check" true (VI.check_against_full inc);
  VI.detach inc

let prop_incremental_differential =
  Testutil.prop
    "incremental = full over random op scripts (families x k in {4,8})" ~count:6
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let k = if seed mod 4 = 0 then 8 else 4 in
      let topo =
        match seed mod 3 with 0 -> "plain" | 1 -> "ab" | _ -> "two-layer"
      in
      differential_script ~topo ~k ~seed:(seed + 1) ~ops:4 ();
      true)

let test_report_renders () =
  let fab = Testutil.converged_fabric () in
  let clean = Format.asprintf "%a" Verify.pp_report (Verify.run fab) in
  Testutil.check_bool "clean report says PASS" true
    (String.length clean > 0 && String.sub clean 0 4 = "PASS");
  let bogus = Fault.Agg_core { pod = 0; stripe = 7; member = 9 } in
  let dirty = Format.asprintf "%a" Verify.pp_report (Verify.run ~faults:[ bogus ] fab) in
  Testutil.check_bool "dirty report mentions FAIL" true
    (let rec contains i =
       i + 4 <= String.length dirty && (String.sub dirty i 4 = "FAIL" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "portland-verify"
    [ ( "clean fabrics",
        [ Alcotest.test_case "k=4 healthy + failure/recovery cycle" `Quick test_clean_k4;
          Alcotest.test_case "k=6 healthy + failure/recovery cycle" `Quick test_clean_k6;
          Alcotest.test_case "k=4 trie serves what the verifier audits" `Quick
            test_trie_linear_agree_k4;
          Alcotest.test_case "k=4 edge cold reboot then verify" `Quick
            test_reboot_edge_then_verify;
          Alcotest.test_case "k=4 agg cold reboot then verify" `Quick
            test_reboot_agg_then_verify;
          Alcotest.test_case "k=6 trie serves what the verifier audits" `Quick
            test_trie_linear_agree_k6 ] );
      ( "seeded corruptions",
        [ Alcotest.test_case "wrong output port" `Quick test_wrong_port_detected;
          Alcotest.test_case "unwired output port" `Quick test_unwired_port_is_blackhole;
          Alcotest.test_case "forwarding loop" `Quick test_loop_detected;
          Alcotest.test_case "stale fault-matrix entry" `Quick test_stale_fault_detected;
          Alcotest.test_case "unknown fault coordinate" `Quick test_unknown_fault_coordinate;
          Alcotest.test_case "empty ECMP group" `Quick test_empty_group_detected ] );
      ( "incremental",
        [ Alcotest.test_case "matches full on a clean fabric" `Quick
            test_incremental_matches_full_when_clean;
          Alcotest.test_case "localized invalidation catches corruption" `Quick
            test_incremental_localized_invalidation;
          Alcotest.test_case "dead edge is a note, not a blackhole" `Quick
            test_dead_edge_is_note_not_blackhole;
          Alcotest.test_case "scripted failure/recovery differential" `Slow
            (differential_script ~topo:"plain" ~k:4 ~seed:7 ~ops:8);
          Alcotest.test_case "scripted differential, AB fat tree" `Slow
            (differential_script ~topo:"ab" ~k:4 ~seed:11 ~ops:6);
          Alcotest.test_case "scripted differential, two-layer leaf-spine" `Slow
            (differential_script ~topo:"two-layer" ~k:4 ~seed:13 ~ops:6);
          prop_incremental_differential ] );
      ( "report",
        [ Alcotest.test_case "pretty-printing" `Quick test_report_renders ] ) ]
