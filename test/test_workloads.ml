open Workloads

let hosts n = Array.init n (fun i -> i)

let prop_permutation_derangement =
  Testutil.prop "random_permutation is a derangement"
    QCheck2.Gen.(pair int (int_range 2 40))
    (fun (seed, n) ->
      let prng = Eventsim.Prng.create seed in
      let pairs = Traffic.random_permutation prng (hosts n) in
      List.length pairs = n
      && List.for_all (fun (a, b) -> a <> b) pairs
      && List.sort_uniq compare (List.map snd pairs) = List.init n (fun i -> i))

let test_stride () =
  let pairs = Traffic.stride (hosts 4) ~stride:1 in
  Alcotest.(check (list (pair int int))) "stride 1" [ (0, 1); (1, 2); (2, 3); (3, 0) ] pairs;
  Testutil.check_int "stride n skips self" 0 (List.length (Traffic.stride (hosts 4) ~stride:4));
  Testutil.check_int "empty hosts" 0 (List.length (Traffic.stride (hosts 0) ~stride:1))

let test_all_pairs () =
  let pairs = Traffic.all_pairs (hosts 4) in
  Testutil.check_int "count" 12 (List.length pairs);
  Testutil.check_bool "no self pairs" true (List.for_all (fun (a, b) -> a <> b) pairs)

let test_hotspot () =
  let pairs = Traffic.hotspot (hosts 5) ~target_index:2 in
  Testutil.check_int "count" 4 (List.length pairs);
  Testutil.check_bool "all to target" true (List.for_all (fun (_, b) -> b = 2) pairs)

let test_sample_pairs () =
  let prng = Eventsim.Prng.create 5 in
  let pairs = Traffic.sample_pairs prng (hosts 10) ~n:30 in
  Testutil.check_int "count" 30 (List.length pairs);
  Testutil.check_bool "distinct endpoints" true (List.for_all (fun (a, b) -> a <> b) pairs)

let test_switch_links_count () =
  let mt = Topology.Fattree.build ~k:4 in
  (* edge-agg: 4 pods x 2 x 2 = 16; agg-core: 4 pods x 2 x 2 = 16 *)
  Testutil.check_int "switch-switch links" 32 (List.length (Failure_plan.switch_links mt))

let test_flow_relevant_links () =
  let mt = Topology.Fattree.build ~k:4 in
  let src = Topology.Fattree.host mt ~pod:0 ~edge:0 ~slot:0 in
  let dst = Topology.Fattree.host mt ~pod:3 ~edge:1 ~slot:1 in
  let rel = Failure_plan.flow_relevant_links mt ~src_host:src ~dst_host:dst in
  (* src edge uplinks (2) + dst edge uplinks (2) + agg-core links touching
     pod 0 or pod 3 (2x4 = 8) = 12 *)
  Testutil.check_int "relevant count" 12 (List.length rel);
  let src_edge = Topology.Fattree.edge mt ~pod:0 ~pos:0 in
  Testutil.check_bool "includes src edge uplinks" true
    (List.exists (fun (a, b) -> a = src_edge || b = src_edge) rel)

let test_pick_survivable () =
  let mt = Topology.Fattree.build ~k:4 in
  let src = Topology.Fattree.host mt ~pod:0 ~edge:0 ~slot:0 in
  let dst = Topology.Fattree.host mt ~pod:3 ~edge:1 ~slot:1 in
  let candidates = Failure_plan.flow_relevant_links mt ~src_host:src ~dst_host:dst in
  let prng = Eventsim.Prng.create 9 in
  for n = 1 to 3 do
    match Failure_plan.pick_survivable prng mt ~candidates ~src_host:src ~dst_host:dst ~n with
    | Some chosen ->
      Testutil.check_int "chose n" n (List.length chosen);
      Testutil.check_bool "subset of candidates" true
        (List.for_all (fun l -> List.mem l candidates) chosen)
    | None -> Alcotest.failf "no survivable set of %d" n
  done;
  (* asking for more than available: None *)
  Testutil.check_bool "too many" true
    (Failure_plan.pick_survivable prng mt ~candidates ~src_host:src ~dst_host:dst ~n:100 = None)

let test_pick_survivable_deterministic () =
  let mt = Topology.Fattree.build ~k:4 in
  let src = Topology.Fattree.host mt ~pod:0 ~edge:0 ~slot:0 in
  let dst = Topology.Fattree.host mt ~pod:3 ~edge:1 ~slot:1 in
  let candidates = Failure_plan.flow_relevant_links mt ~src_host:src ~dst_host:dst in
  let pick seed =
    let prng = Eventsim.Prng.create seed in
    Failure_plan.pick_survivable prng mt ~candidates ~src_host:src ~dst_host:dst ~n:2
  in
  Testutil.check_bool "same seed, same set" true (pick 11 = pick 11);
  (* survivability: the chosen links never include a full cut of the
     source edge's uplinks (which would strand the flow) *)
  (match pick 11 with
   | None -> Alcotest.fail "no survivable set"
   | Some chosen ->
     let src_edge = mt.Topology.Multirooted.edges.(0).(0) in
     let uplinks_cut =
       List.length (List.filter (fun (a, b) -> a = src_edge || b = src_edge) chosen)
     in
     Testutil.check_bool "source edge keeps an uplink" true
       (uplinks_cut < mt.Topology.Multirooted.spec.Topology.Multirooted.aggs_per_pod))

let test_link_index_agreement () =
  let mt = Topology.Fattree.build ~k:4 in
  let idx = Failure_plan.link_index mt in
  let devices =
    List.init (Array.length (Topology.Topo.nodes mt.Topology.Multirooted.topo)) Fun.id
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let fast = Failure_plan.indexed_link_between idx a b in
          let slow = Failure_plan.link_index_between mt a b in
          if fast <> slow then
            Alcotest.failf "link_index disagrees at (%d,%d): %s vs %s" a b
              (match fast with Some i -> string_of_int i | None -> "none")
              (match slow with Some i -> string_of_int i | None -> "none"))
        devices)
    devices

let test_fault_set_semantics () =
  let open Portland in
  let f1 = Fault.Edge_agg { pod = 2; edge_pos = 1; stripe = 0 } in
  let f2 = Fault.Agg_core { pod = 0; stripe = 1; member = 1 } in
  let f3 = Fault.Host_edge { pod = 1; edge_pos = 0; port = 3 } in
  let s = Fault.Set.create () in
  List.iter (Fault.Set.add s) [ f3; f1; f2; f1 ];
  Testutil.check_int "duplicates collapse" 3 (Fault.Set.cardinal s);
  (* elements are sorted by Fault.compare — dissemination determinism *)
  let els = Fault.Set.elements s in
  Testutil.check_bool "sorted" true (List.sort Fault.compare els = els);
  Testutil.check_bool "insertion order irrelevant" true
    (Fault.Set.elements (Fault.Set.of_list [ f1; f2; f3 ]) = els);
  Fault.Set.remove s f2;
  Testutil.check_bool "removed" false (Fault.Set.mem s f2);
  Fault.Set.remove s f2;
  Testutil.check_int "remove is idempotent" 2 (Fault.Set.cardinal s);
  Fault.Set.clear s;
  Testutil.check_int "clear" 0 (Fault.Set.cardinal s);
  Testutil.check_bool "empty elements" true (Fault.Set.elements s = [])

let () =
  Alcotest.run "workloads"
    [ ( "traffic",
        [ prop_permutation_derangement;
          Alcotest.test_case "stride" `Quick test_stride;
          Alcotest.test_case "all pairs" `Quick test_all_pairs;
          Alcotest.test_case "hotspot" `Quick test_hotspot;
          Alcotest.test_case "sample pairs" `Quick test_sample_pairs ] );
      ( "failure plans",
        [ Alcotest.test_case "switch links" `Quick test_switch_links_count;
          Alcotest.test_case "flow-relevant links" `Quick test_flow_relevant_links;
          Alcotest.test_case "survivable sets" `Quick test_pick_survivable;
          Alcotest.test_case "survivable determinism" `Quick test_pick_survivable_deterministic;
          Alcotest.test_case "link index agreement" `Quick test_link_index_agreement ] );
      ( "fault set",
        [ Alcotest.test_case "sorted set semantics" `Quick test_fault_set_semantics ] ) ]
