(* Fabric-manager soft-state suite: pod sharding, the replication-log
   failover path, the pending-ARP lifecycle (dedupe, drops on switch
   death and FM restart) and the generation-stamped edge ARP caches. *)

module F = Portland.Fabric
module FM = Portland.Fabric_manager
module SA = Portland.Switch_agent
module HA = Portland.Host_agent
module Time = Eventsim.Time

let udp seq = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:seq ~payload_len:64 ())

(* ---------------- direct FM fixtures (no fabric) ---------------- *)

let mk_binding i =
  { Portland.Msg.ip = Netcore.Ipv4_addr.of_int (0x0A000000 lor i);
    amac = Netcore.Mac_addr.of_int (0x020000000000 lor i);
    pmac = Portland.Pmac.make ~pod:(i mod 4) ~position:(i mod 2) ~port:(i mod 2) ~vmid:1;
    edge_switch = i mod 16 }

(* a bare FM on a bare control network, with scripted "switches": the
   unit-level harness for the pending-ARP lifecycle *)
let mk_fm ?(fm_shards = 1) () =
  let engine = Eventsim.Engine.create () in
  let ctrl = Portland.Ctrl.create engine ~latency:(Time.us 50) in
  let spec = Topology.Fattree.spec ~k:4 in
  let fm = FM.create ~fm_shards engine Portland.Config.default ctrl ~spec in
  (engine, ctrl, fm)

let query ctrl ~from_sw ~port target_ip =
  Portland.Ctrl.send_to_fm ctrl ~from:from_sw
    (Portland.Msg.Arp_query
       { switch_id = from_sw;
         requester_ip = Netcore.Ipv4_addr.of_octets 10 0 0 2;
         requester_pmac = Portland.Pmac.make ~pod:0 ~position:0 ~port:0 ~vmid:1;
         requester_port = port;
         target_ip })

let count_answers ctrl sw counter =
  Portland.Ctrl.register_switch ctrl sw (function
    | Portland.Msg.Arp_answer _ -> incr counter
    | _ -> ())

(* ---------------- pending-ARP lifecycle ---------------- *)

let test_pending_dedupe () =
  List.iter
    (fun fm_shards ->
      let engine, ctrl, fm = mk_fm ~fm_shards () in
      let answers = ref 0 in
      count_answers ctrl 1 answers;
      let target = Netcore.Ipv4_addr.of_octets 10 2 0 5 in
      (* a host retrying an unresolved target re-misses with identical
         (switch, requester IP, port): one pending entry, one reply *)
      for _ = 1 to 3 do query ctrl ~from_sw:1 ~port:0 target done;
      (* a second requester port on the same switch is a distinct waiter *)
      query ctrl ~from_sw:1 ~port:1 target;
      Eventsim.Engine.run engine;
      Testutil.check_int "one pending target IP" 1 (FM.pending_count fm);
      Portland.Ctrl.send_to_fm ctrl ~from:9
        (Portland.Msg.Host_announce { (mk_binding 5) with Portland.Msg.ip = target });
      Eventsim.Engine.run engine;
      Testutil.check_int "one answer per distinct waiter" 2 !answers;
      Testutil.check_int "pending cleared" 0 (FM.pending_count fm);
      Testutil.check_int "nothing dropped" 0 (FM.counters fm).FM.pending_dropped)
    [ 1; 4 ]

let test_pending_dropped_on_switch_death () =
  let engine, ctrl, fm = mk_fm ~fm_shards:2 () in
  let alive = ref 0 and dead = ref 0 in
  count_answers ctrl 1 alive;
  count_answers ctrl 2 dead;
  let target = Netcore.Ipv4_addr.of_octets 10 3 0 5 in
  query ctrl ~from_sw:1 ~port:0 target;
  query ctrl ~from_sw:2 ~port:0 target;
  Eventsim.Engine.run engine;
  Testutil.check_int "both switches waiting" 1 (FM.pending_count fm);
  (* switch 2 dies with the resolution in flight: its waiter must go,
     switch 1's must survive *)
  Portland.Ctrl.unregister_switch ctrl 2;
  Testutil.check_int "dead switch's waiter dropped" 1 (FM.counters fm).FM.pending_dropped;
  Testutil.check_int "live waiter survives" 1 (FM.pending_count fm);
  Portland.Ctrl.send_to_fm ctrl ~from:9
    (Portland.Msg.Host_announce { (mk_binding 7) with Portland.Msg.ip = target });
  Eventsim.Engine.run engine;
  Testutil.check_int "live switch answered" 1 !alive;
  Testutil.check_int "dead switch never answered" 0 !dead

(* ---------------- resolve / resolve_batch agreement ---------------- *)

let test_resolve_batch_matches_resolve () =
  List.iter
    (fun fm_shards ->
      let _, _, fm = mk_fm ~fm_shards () in
      for i = 0 to 511 do
        FM.insert_binding_for_test fm (mk_binding i)
      done;
      (* present, absent and repeated IPs, spread across every shard *)
      let ips =
        Array.init 600 (fun i ->
            Netcore.Ipv4_addr.of_int (0x0A000000 lor (i * 7 mod 700)))
      in
      let batched = FM.resolve_batch fm ips in
      Array.iteri
        (fun i ip ->
          if batched.(i) <> FM.resolve fm ip then
            Alcotest.failf "resolve_batch disagrees with resolve at %d (fm_shards=%d)" i
              fm_shards)
        ips)
    [ 1; 4 ]

(* ---------------- shard integrity & failover ---------------- *)

let test_shard_integrity_converged () =
  (* fm_shards = 5 > num_pods leaves one pod shard empty, which must
     also be consistent *)
  List.iter
    (fun fm_shards ->
      let fab =
        F.create (F.Config.fattree ~obs:Obs.null ~seed:42 ~fm_shards ~k:4 ())
      in
      Alcotest.(check bool) "converged" true (F.await_convergence fab);
      (match FM.shard_integrity (F.fabric_manager fab) with
       | [] -> ()
       | v :: _ -> Alcotest.failf "shard integrity (fm_shards=%d): %s" fm_shards v))
    [ 1; 2; 5 ]

let test_failover_shard () =
  let fab = F.create (F.Config.fattree ~obs:Obs.null ~seed:11 ~fm_shards:3 ~k:4 ()) in
  Alcotest.(check bool) "converged" true (F.await_convergence fab);
  let fm = F.fabric_manager fab in
  for pod = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "failover of pod %d verified" pod)
      true
      (F.failover_fm_shard fab ~pod)
  done;
  Testutil.check_int "four failovers counted" 4 (FM.counters fm).FM.shard_failovers;
  Alcotest.(check (list string)) "integrity after failovers" [] (FM.shard_integrity fm);
  Alcotest.check_raises "pod out of range"
    (Invalid_argument "Fabric.failover_fm_shard: pod out of range") (fun () ->
      ignore (F.failover_fm_shard fab ~pod:7));
  F.run_for fab (Time.ms 100);
  Testutil.assert_verified ~msg:"dataplane after shard failovers" fab;
  Testutil.assert_all_pairs_deliver ~msg:"delivery after shard failovers" fab

(* A rebooted edge switch gets its host bindings back by replaying the
   replication log of the shard that owns its hosts' IPs — and only that
   one. Foreign pod shards and the core shard must never be read: their
   replay counters stay put. The owning shard is keyed by the hosts'
   {e IP} pods, not the FM's discovery-order pod labels, so the expected
   index is computed from a bound IP. *)
let test_resync_reads_only_owning_shard () =
  let fm_shards = 4 in
  let fab = F.create (F.Config.fattree ~obs:Obs.null ~seed:21 ~fm_shards ~k:4 ()) in
  Alcotest.(check bool) "converged" true (F.await_convergence fab);
  let fm = F.fabric_manager fab in
  let h = F.host fab ~pod:2 ~edge:0 ~slot:0 in
  let b =
    match FM.lookup_binding fm (HA.ip h) with
    | Some b -> b
    | None -> Alcotest.fail "host unbound"
  in
  let owning =
    ((Netcore.Ipv4_addr.to_int b.Portland.Msg.ip lsr 16) land 0xff) mod fm_shards
  in
  let before = FM.shard_log_replays fm in
  F.fail_switch fab b.Portland.Msg.edge_switch;
  F.run_for fab (Time.ms 300);
  F.recover_switch fab b.Portland.Msg.edge_switch;
  Alcotest.(check bool) "reconverged after reboot" true (F.await_convergence fab);
  let after = FM.shard_log_replays fm in
  Testutil.check_int "replay counters cover pod shards + core shard"
    (fm_shards + 1) (Array.length after);
  Alcotest.(check bool) "owning shard's log replayed" true (after.(owning) > before.(owning));
  Array.iteri
    (fun i n ->
      if i <> owning then
        Testutil.check_int (Printf.sprintf "shard %d log untouched" i) before.(i) n)
    after;
  (* the replayed bindings are live: the rebooted edge serves its hosts *)
  Testutil.assert_verified ~msg:"dataplane after shard-scoped resync" fab

(* ---------------- FM restart racing an in-flight ARP miss ---------------- *)

(* the satellite-4 race: a host's first ARP query is on the wire when the
   FM cold-restarts. The fresh FM has no bindings, so the query misses
   and parks; resync re-announces the target, the pending entry is
   answered, and the host's retry/backoff never gives up. Must hold on
   the classic and the sharded engine, monolithic and sharded FM. *)
let fm_restart_race ~domains ~fm_shards () =
  let fab =
    F.create (F.Config.fattree ~obs:Obs.null ~seed:7 ~domains ~fm_shards ~k:4 ())
  in
  Alcotest.(check bool) "converged" true (F.await_convergence fab);
  let src = F.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = F.host fab ~pod:3 ~edge:0 ~slot:0 in
  let got = ref 0 in
  HA.set_rx dst (fun _ -> incr got);
  HA.send_ip src ~dst:(HA.ip dst) (udp 0);
  (* the datagram is queued on the resolution; restart before the query
     can land *)
  F.restart_fabric_manager fab;
  F.run_for fab (Time.sec 2);
  Testutil.check_int "datagram delivered after resync" 1 !got;
  Testutil.check_int "resolution never abandoned" 0 (HA.counters src).HA.arp_abandoned;
  (* no stale reply: what src resolved is the FM's current truth *)
  (match FM.lookup_binding (F.fabric_manager fab) (HA.ip dst) with
   | None -> Alcotest.fail "dst missing from the restarted FM"
   | Some b ->
     Alcotest.(check bool) "resolved MAC is the live PMAC" true
       (HA.arp_lookup src (HA.ip dst) = Some (Portland.Pmac.to_mac b.Portland.Msg.pmac)));
  Testutil.assert_verified ~msg:"dataplane after the race" fab

let test_fm_restart_races_arp_miss () = fm_restart_race ~domains:0 ~fm_shards:1 ()
let test_fm_restart_races_arp_miss_sharded_fm () = fm_restart_race ~domains:0 ~fm_shards:4 ()
let test_fm_restart_races_arp_miss_sharded_engine () =
  fm_restart_race ~domains:2 ~fm_shards:4 ()

(* ---------------- generation-stamped edge ARP caches ---------------- *)

let test_arp_cache_generation_migration () =
  let fab =
    F.create
      (F.Config.fattree ~obs:Obs.null ~seed:5 ~spare_slots:[ (1, 0, 0) ] ~fm_shards:2
         ~k:4 ())
  in
  Alcotest.(check bool) "converged" true (F.await_convergence fab);
  let fm = F.fabric_manager fab in
  let a = F.host fab ~pod:0 ~edge:0 ~slot:0 in
  let a2 = F.host fab ~pod:0 ~edge:0 ~slot:1 in
  let v = F.host fab ~pod:3 ~edge:0 ~slot:0 in
  let v_ip = HA.ip v in
  let edge =
    match FM.lookup_binding fm (HA.ip a) with
    | Some b -> F.agent fab b.Portland.Msg.edge_switch
    | None -> Alcotest.fail "host A unbound"
  in
  (* first resolution: A's edge caches the answer at generation 0 *)
  HA.send_ip a ~dst:v_ip (udp 0);
  F.run_for fab (Time.ms 100);
  Alcotest.(check bool) "cached at gen 0" true
    (List.exists (fun (ip, _, gen) -> ip = v_ip && gen = 0) (SA.arp_cache_entries edge));
  (* the VM migrates: the generation bump makes that entry stale *)
  F.migrate fab ~vm:v ~to_:(1, 0, 0) ~downtime:(Time.ms 50) ();
  F.run_for fab (Time.ms 500);
  Testutil.check_int "edge saw the new generation" 1 (SA.arp_gen_seen edge);
  Alcotest.(check bool) "stale entry no longer served" true
    (SA.arp_cache_entries edge = []);
  (* a fresh resolution from the same edge must re-resolve, not serve the
     pre-migration PMAC *)
  let got = ref 0 in
  HA.set_rx v (fun _ -> incr got);
  HA.send_ip a2 ~dst:v_ip (udp 1);
  F.run_for fab (Time.ms 200);
  Testutil.check_int "delivered to the migrated VM" 1 !got;
  (match FM.lookup_binding fm v_ip with
   | None -> Alcotest.fail "migrated VM unbound"
   | Some b ->
     Alcotest.(check bool) "cache now holds the post-migration PMAC at gen 1" true
       (List.exists
          (fun (ip, pmac, gen) ->
            ip = v_ip && Portland.Pmac.equal pmac b.Portland.Msg.pmac && gen = 1)
          (SA.arp_cache_entries edge)));
  (* and the refreshed entry serves the next request locally *)
  let hits0 = (SA.counters edge).SA.arp_cache_hits in
  HA.flush_arp_cache a2;
  HA.send_ip a2 ~dst:v_ip (udp 2);
  F.run_for fab (Time.ms 200);
  Testutil.check_int "second datagram delivered" 2 !got;
  Alcotest.(check bool) "served from the edge cache" true
    ((SA.counters edge).SA.arp_cache_hits > hits0);
  Testutil.assert_verified ~msg:"dataplane after migration" fab

let test_arp_cache_wiped_on_reboot () =
  let fab = F.create (F.Config.fattree ~obs:Obs.null ~seed:3 ~k:4 ()) in
  Alcotest.(check bool) "converged" true (F.await_convergence fab);
  let a = F.host fab ~pod:0 ~edge:0 ~slot:0 in
  let v = F.host fab ~pod:3 ~edge:0 ~slot:0 in
  let edge =
    match FM.lookup_binding (F.fabric_manager fab) (HA.ip a) with
    | Some b -> b.Portland.Msg.edge_switch
    | None -> Alcotest.fail "host A unbound"
  in
  HA.send_ip a ~dst:(HA.ip v) (udp 0);
  F.run_for fab (Time.ms 100);
  Alcotest.(check bool) "cache populated" true
    (SA.arp_cache_entries (F.agent fab edge) <> []);
  F.fail_switch fab edge;
  F.recover_switch fab edge;
  Alcotest.(check bool) "cold reboot wipes the cache" true
    (SA.arp_cache_entries (F.agent fab edge) = []);
  Testutil.check_int "generation floor reset" 0 (SA.arp_gen_seen (F.agent fab edge));
  F.run_for fab (Time.ms 500);
  Testutil.assert_verified ~msg:"dataplane after reboot" fab

let () =
  Alcotest.run "fm"
    [ ( "pending-arp",
        [ Alcotest.test_case "dedupe per (switch, requester, port)" `Quick
            test_pending_dedupe;
          Alcotest.test_case "dropped when the asking switch dies" `Quick
            test_pending_dropped_on_switch_death ] );
      ( "sharding",
        [ Alcotest.test_case "resolve_batch = resolve, all shard counts" `Quick
            test_resolve_batch_matches_resolve;
          Alcotest.test_case "shard integrity on a converged fabric" `Quick
            test_shard_integrity_converged;
          Alcotest.test_case "failover rebuilds every shard from its log" `Quick
            test_failover_shard;
          Alcotest.test_case "edge resync reads only the owning shard's log" `Quick
            test_resync_reads_only_owning_shard ] );
      ( "fm-restart-race",
        [ Alcotest.test_case "ARP miss in flight, classic engine" `Quick
            test_fm_restart_races_arp_miss;
          Alcotest.test_case "ARP miss in flight, sharded FM" `Quick
            test_fm_restart_races_arp_miss_sharded_fm;
          Alcotest.test_case "ARP miss in flight, sharded engine" `Quick
            test_fm_restart_races_arp_miss_sharded_engine ] );
      ( "edge-arp-cache",
        [ Alcotest.test_case "migration bumps the generation and re-resolves" `Quick
            test_arp_cache_generation_migration;
          Alcotest.test_case "cold reboot wipes cache and generation floor" `Quick
            test_arp_cache_wiped_on_reboot ] ) ]
