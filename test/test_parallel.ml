(* Cross-domain determinism for the sharded engine.

   A fabric created with [Config.domains = n >= 1] runs on the
   [Eventsim.Sharded] scheduler with logical shards fixed by the
   topology; [n] only maps shards onto OS domains. These tests assert
   the load-bearing property: the run is byte-identical for every
   domain count — equal control-state digests and verifier digests at
   every quiescent barrier, and byte-identical chaos campaign reports. *)

open Eventsim
module F = Portland.Fabric
module V = Portland_verify.Verify
module Family = Topology.Topo.Family
module MR = Topology.Multirooted

(* ---------------- Sharded scheduler unit ---------------- *)

(* Three toy shards passing a token around through cross-shard posts
   (hop latency = the lookahead), with a second chain running in
   opposition and a coordinator action in the middle: the merged event
   log must be identical for 1, 2 and 4 domains. *)
let sharded_toy domains =
  let n = 3 in
  let engines = Array.init n (fun _ -> Engine.create ()) in
  let s = Sharded.create ~domains ~lookahead:10 engines in
  let logs = Array.make n [] in
  let rec hop ~chain shard hops =
    if hops > 0 then begin
      let e = Sharded.engine s shard in
      logs.(shard) <- (Engine.now e, chain, hops) :: logs.(shard);
      let dst = (shard + 1) mod n in
      Sharded.post s ~src:shard ~dst
        ~time:(Engine.now e + 10)
        (fun () -> hop ~chain dst (hops - 1))
    end
  in
  ignore (Engine.schedule_at (Sharded.engine s 0) ~time:5 (fun () -> hop ~chain:0 0 60));
  ignore (Engine.schedule_at (Sharded.engine s 2) ~time:7 (fun () -> hop ~chain:1 2 60));
  let coord_seen = ref (-1) in
  Sharded.schedule_coordinator s ~time:333 (fun () ->
      coord_seen := Sharded.now s;
      (* all shard clocks agree at a coordinator point *)
      Array.iter (fun e -> Testutil.check_int "coord clock" 333 (Engine.now e)) engines);
  Sharded.run_until s 5_000;
  Testutil.check_int "coordinator ran at its instant" 333 !coord_seen;
  Testutil.check_int "all events fired" 122 (Sharded.events_processed s);
  Testutil.check_int "clock at target" 5_000 (Sharded.now s);
  Array.to_list (Array.map List.rev logs)

let test_sharded_unit () =
  let reference = sharded_toy 1 in
  List.iter
    (fun domains ->
      let got = sharded_toy domains in
      if got <> reference then
        Alcotest.failf "toy shard log diverged at domains=%d" domains)
    [ 2; 4 ]

(* ---------------- fabric determinism matrix ---------------- *)

(* Digests at three quiescent barriers: after convergence, after a
   cross-shard (edge<->agg) link failure is detected and broadcast, and
   after recovery — exercising boot, fault and heal paths through the
   cross-shard control channel. *)
let fingerprint ~family ~domains =
  let fab = F.create (F.Config.of_family ~domains family) in
  if not (F.await_convergence fab) then
    Alcotest.failf "%s (domains=%d) failed to converge" (Family.to_string family)
      domains;
  let d1 = F.control_digest fab in
  let v1 = V.digest_of_report (V.run fab) in
  let mt = F.tree fab in
  let e = mt.MR.edges.(0).(0) in
  (* first upstream switch: the pod's first agg, or (two-layer, no agg
     tier) the first spine *)
  let a =
    if Array.length mt.MR.aggs.(0) > 0 then mt.MR.aggs.(0).(0) else mt.MR.cores.(0)
  in
  Testutil.check_bool "link failed" true (F.fail_link_between fab ~a:e ~b:a);
  F.run_for fab (Time.ms 300);
  let d2 = F.control_digest fab in
  let v2 = V.digest_of_report (V.run fab) in
  Testutil.check_bool "link recovered" true (F.recover_link_between fab ~a:e ~b:a);
  F.run_for fab (Time.ms 300);
  let d3 = F.control_digest fab in
  let v3 = V.digest_of_report (V.run fab) in
  [ d1; v1; d2; v2; d3; v3 ]

let matrix_case k family () =
  let reference = fingerprint ~family ~domains:1 in
  List.iter
    (fun domains ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s k=%d: domains=%d equals domains=1"
           (Family.to_string family) k domains)
        reference
        (fingerprint ~family ~domains))
    [ 2; 4 ]

(* ---------------- chaos campaign byte-identity ---------------- *)

let chaos_json ~domains =
  let fab = F.create (F.Config.of_family ~domains (Family.Plain { k = 4 })) in
  if not (F.await_convergence fab) then
    Alcotest.failf "chaos fabric (domains=%d) failed to converge" domains;
  let plan = Chaos.generate ~seed:42 ~duration:(Time.ms 3000) (F.tree fab) in
  let r = Chaos.run_campaign ~label:"domains" ~seed:42 fab plan in
  Obs.Json.to_string (Chaos.report_to_json r)

let test_chaos_identical () =
  let reference = chaos_json ~domains:1 in
  List.iter
    (fun domains ->
      Testutil.check_string
        (Printf.sprintf "chaos campaign JSON identical at domains=%d" domains)
        reference (chaos_json ~domains))
    [ 2; 4 ]

(* ---------------- sharded-mode guards ---------------- *)

let test_journal_rejected () =
  let fab = F.create (F.Config.fattree ~domains:1 ~obs:Obs.null ~k:4 ()) in
  Alcotest.check_raises "journal requires the classic engine"
    (Invalid_argument
       "Fabric.set_journal: the update journal requires the single-domain engine \
        (Config.domains = 0)")
    (fun () -> F.set_journal fab (Some (fun _ -> ())))

let () =
  match Sys.getenv_opt "PARPROF" with
  | Some spec ->
    (* PARPROF="k,domains" : time one boot+run and dump window stats *)
    let k, domains = Scanf.sscanf spec "%d,%d" (fun a b -> (a, b)) in
    let t0 = Sys.time () in
    let fab = F.create (F.Config.fattree ~obs:Obs.null ~domains ~k ()) in
    let ok = F.await_convergence ~timeout:(Time.sec 60) fab in
    let t1 = Sys.time () in
    F.run_for fab (Time.ms 150);
    let t2 = Sys.time () in
    let s = Option.get (F.sharded fab) in
    Printf.printf
      "k=%d domains=%d converged=%b conv_wall=%.2fs run150_wall=%.2fs windows=%d \
       events=%d digest=%s\n"
      k domains ok (t1 -. t0) (t2 -. t1) (Sharded.windows_run s)
      (Sharded.events_processed s) (F.control_digest fab);
    exit 0
  | None -> ();
  let open Alcotest in
  let matrix =
    List.concat_map
      (fun k ->
        List.map
          (fun family ->
            test_case
              (Printf.sprintf "%s k=%d" (Family.to_string family) k)
              `Slow (matrix_case k family))
          (Family.all ~k))
      [ 4; 8 ]
  in
  run "parallel"
    [ ("sharded scheduler", [ test_case "toy cross-shard determinism" `Quick test_sharded_unit ]);
      ("determinism matrix", matrix);
      ("chaos byte-identity",
       [ test_case "campaign JSON equal across domains" `Slow test_chaos_identical ]);
      ("guards", [ test_case "journal rejected under sharding" `Quick test_journal_rejected ])
    ]
