(* Policy-as-program suite: the declarative baseline compiles to exactly
   the handwritten switch programming (every family member, k in {4,8},
   at boot and through chaos campaigns), the compiler rejects
   non-lowerable predicates with typed errors, seeded policy bugs are
   detected with switch/class/source-span provenance and shrink to the
   single faulty clause, and compiled-table installs drive a clean
   incremental-verifier session. *)

open Portland
open Eventsim
module P = Portland_policy.Policy
module FT = Switchfab.Flow_table
module VI = Portland_verify.Verify.Incremental
module Verify = Portland_verify.Verify

let family ~k name = Topology.Topo.Family.of_string ~k name |> Result.get_ok

(* ---------------- boot equivalence ---------------- *)

let equivalent_at_boot ~k topo () =
  let fab = Testutil.converged_family (family ~k topo) in
  let r = P.Check.run fab in
  if not (P.Check.ok r) then
    Alcotest.failf "%s k=%d:@.%a" topo k P.Check.pp_report r;
  let spec = Fabric.spec fab in
  let module MR = Topology.Multirooted in
  Testutil.check_int "every switch audited"
    ((spec.MR.num_pods * (spec.MR.edges_per_pod + spec.MR.aggs_per_pod))
    + spec.MR.num_cores)
    r.P.Check.ck_switches;
  Testutil.check_int "one class per host"
    (spec.MR.num_pods * spec.MR.edges_per_pod * spec.MR.hosts_per_edge)
    r.P.Check.ck_classes;
  Testutil.check_int "no digest mismatches" 0 r.P.Check.ck_digest_mismatches;
  Testutil.check_bool "entries compared" true (r.P.Check.ck_entries > 0);
  Testutil.check_bool "groups compared" true (r.P.Check.ck_groups > 0)

(* the check must hold against reconverged state, not just boot state *)
let test_equivalent_after_failure () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let module MR = Topology.Multirooted in
  Testutil.check_bool "link existed" true
    (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(0));
  Fabric.run_for fab (Time.ms 300);
  let r = P.Check.run fab in
  if not (P.Check.ok r) then
    Alcotest.failf "after uplink failure:@.%a" P.Check.pp_report r;
  Testutil.check_bool "agg-core link existed" true
    (Fabric.fail_link_between fab ~a:mt.MR.aggs.(1).(0) ~b:mt.MR.cores.(0));
  Fabric.run_for fab (Time.ms 300);
  let r = P.Check.run fab in
  if not (P.Check.ok r) then
    Alcotest.failf "after agg-core failure:@.%a" P.Check.pp_report r

(* ---------------- typed compile errors ---------------- *)

let some_mac = { FT.value = 0x000100000000; mask = 0xFFFF00000000 }

let test_typed_errors () =
  let err p =
    match P.compile p with
    | Ok _ -> Alcotest.fail "expected a compile error"
    | Error e -> e
  in
  (match err (P.rule ~span:"s1" ~name:"r" ~prio:10 (P.Dst_mac some_mac) [ P.Deny ]) with
   | P.Unlocated { span } -> Testutil.check_string "unlocated span" "s1" span
   | e -> Alcotest.failf "wrong error: %a" P.pp_error e);
  (match
     err
       (P.rule ~span:"s2" ~name:"r" ~prio:10
          (P.And (P.At_switch 3, P.In_port 1))
          [ P.Forward 0 ])
   with
   | P.In_port_unsupported { span } -> Testutil.check_string "in_port span" "s2" span
   | e -> Alcotest.failf "wrong error: %a" P.pp_error e);
  (match
     err
       (P.rule ~span:"s3" ~name:"r" ~prio:10
          (P.And (P.At_switch 3, P.Not (P.Dst_mac some_mac)))
          [ P.Forward 0 ])
   with
   | P.Negation_unsupported { span } -> Testutil.check_string "negation span" "s3" span
   | e -> Alcotest.failf "wrong error: %a" P.pp_error e);
  (match
     err
       (P.seq
          (P.rule ~span:"s4" ~name:"l" ~prio:10 (P.At_switch 3) [ P.Forward 0 ])
          (P.rule ~span:"s5" ~name:"r" ~prio:0 P.True [ P.Forward 1 ]))
   with
   | P.Seq_left_not_rewrite { span } -> Testutil.check_string "seq span" "s4" span
   | e -> Alcotest.failf "wrong error: %a" P.pp_error e);
  (* double negation cancels instead of erroring *)
  match
    P.compile
      (P.rule ~span:"s6" ~name:"r" ~prio:10
         (P.And (P.At_switch 3, P.Not (P.Not (P.Dst_mac some_mac))))
         [ P.Forward 0 ])
  with
  | Ok c -> Testutil.check_int "double negation lowers" 1 (P.entry_count c)
  | Error e -> Alcotest.failf "double negation should compile: %a" P.pp_error e

let test_language_lowering () =
  let other = { FT.value = 0x000200000000; mask = 0xFFFF00000000 } in
  (* a contradictory conjunction compiles to nothing *)
  (match
     P.compile
       (P.rule ~span:"c" ~name:"c" ~prio:10
          (P.And (P.At_switch 1, P.And (P.Dst_mac some_mac, P.Dst_mac other)))
          [ P.Forward 0 ])
   with
   | Ok c -> Testutil.check_int "contradiction is empty" 0 (P.entry_count c)
   | Error e -> Alcotest.failf "contradiction should compile (to nothing): %a" P.pp_error e);
  (* Or splits into disjuncts; Restrict localizes; Tenant lowers to the
     10.<tag>.0.0/16 prefix *)
  match
    P.compile
      (P.restrict
         (P.union
            [ P.rule ~span:"u1" ~name:"a" ~prio:10
                (P.Or (P.Dst_mac some_mac, P.Dst_mac other))
                [ P.Forward 1 ];
              P.rule ~span:"u2" ~name:"b" ~prio:5 (P.Tenant 3) [ P.Punt_fm ] ])
         (P.At_switch 7))
  with
  | Error e -> Alcotest.failf "union should compile: %a" P.pp_error e
  | Ok c ->
    Testutil.check_int "one switch programmed" 1 (List.length (P.switches c));
    Testutil.check_int "three lowered entries" 3 (P.entry_count c);
    let t = Option.get (P.table c 7) in
    (match FT.find_entry t "b" with
     | Some e ->
       (match e.FT.mtch.FT.ip_dst with
        | Some m ->
          Testutil.check_int "tenant prefix value" ((10 lsl 24) lor (3 lsl 16)) m.FT.value;
          Testutil.check_int "tenant prefix mask" 0xFFFF0000 m.FT.mask
        | None -> Alcotest.fail "tenant clause lost its ip match")
     | None -> Alcotest.fail "tenant entry missing");
    Testutil.check_string "span survives lowering" "u2"
      (Option.get (P.span_of c ~switch:7 ~entry:"b"))

(* ---------------- seeded policy bugs ---------------- *)

let corruption_detected cz () =
  let fab = Testutil.converged_fabric () in
  let pol = P.baseline fab in
  let bad = P.corrupt cz pol in
  let r = P.Check.differential fab (P.compile_exn bad) in
  Testutil.check_bool "divergence detected" false (P.Check.ok r);
  (* provenance: some counterexample carries the policy source span, and
     the class-level comparison names a concrete diverging PMAC class *)
  Testutil.check_bool "span provenance" true
    (List.exists (fun c -> c.P.Check.cx_span <> None) r.P.Check.ck_counterexamples);
  Testutil.check_bool "class provenance" true
    (List.exists (fun c -> c.P.Check.cx_class <> None) r.P.Check.ck_counterexamples);
  Testutil.check_bool "switch provenance" true
    (List.exists (fun c -> c.P.Check.cx_switch >= 0) r.P.Check.ck_counterexamples);
  (* ddmin shrinks to exactly the corrupted clause *)
  let spans = P.spans (P.Check.shrink fab bad) in
  Testutil.check_int "shrunk to one clause" 1 (List.length spans);
  let span = List.hd spans in
  Testutil.check_bool "shrunk clause is a counterexample's clause" true
    (List.exists (fun c -> c.P.Check.cx_span = Some span) r.P.Check.ck_counterexamples)

let test_wrong_prefix_detected () = corruption_detected P.Wrong_prefix_len ()
let test_drop_ecmp_detected () = corruption_detected P.Drop_ecmp_branch ()

let test_corruption_round_trip () =
  List.iter
    (fun cz ->
      Testutil.check_bool "round trip" true
        (P.corruption_of_string (P.corruption_to_string cz) = Some cz))
    [ P.Wrong_prefix_len; P.Drop_ecmp_branch ]

(* ---------------- chaos integration ---------------- *)

let policy_campaign ~seed topo () =
  let fab = Fabric.create @@ Fabric.Config.of_family ~seed (family ~k:4 topo) in
  if not (Fabric.await_convergence fab) then Alcotest.failf "%s failed to converge" topo;
  let plan = Chaos.generate ~seed ~duration:(Time.ms 4000) (Fabric.tree fab) in
  let r = Chaos.run_campaign ~label:("policy-" ^ topo) ~check_policy:true ~seed fab plan in
  if not (Chaos.report_ok r) then Alcotest.failf "%s campaign:@.%a" topo Chaos.pp_report r;
  Testutil.check_bool "policy checks ran" true (r.Chaos.rep_policy_checks > 0);
  Testutil.check_int "compiled = handwritten at every quiescent point" 0
    r.Chaos.rep_policy_divergences

(* ---------------- install + incremental verification ---------------- *)

(* replacing the handwritten tables with the compiled ones is invisible:
   the journal-driven incremental session stays clean and agrees with a
   fresh full verification *)
let test_install_drives_incremental () =
  let fab = Testutil.converged_fabric () in
  let inc = VI.attach fab in
  ignore (VI.refresh inc);
  let compiled = P.compile_exn (P.baseline fab) in
  P.install fab compiled;
  let r = VI.refresh inc in
  if not (Verify.ok r) then
    Alcotest.failf "incremental after compiled install:@.%a" Verify.pp_report r;
  Testutil.check_string "incremental digest = full digest"
    (Verify.digest_of_report (Verify.run fab))
    (Verify.digest_of_report r);
  Testutil.check_bool "differential self-check" true (VI.check_against_full inc);
  VI.detach inc;
  (* and the fabric still proves policy-equivalent afterwards *)
  let ck = P.Check.run fab in
  if not (P.Check.ok ck) then
    Alcotest.failf "check after install:@.%a" P.Check.pp_report ck;
  Testutil.assert_all_pairs_deliver ~msg:"delivery on compiled tables" fab

(* ---------------- report plumbing ---------------- *)

let test_report_json_deterministic () =
  let j () =
    let fab = Testutil.converged_fabric () in
    Obs.Json.to_string (P.Check.report_to_json (P.Check.run fab))
  in
  Testutil.check_string "same fabric, byte-identical JSON" (j ()) (j ())

let () =
  Alcotest.run "policy"
    [ ( "boot equivalence",
        [ Alcotest.test_case "plain k=4" `Quick (equivalent_at_boot ~k:4 "plain");
          Alcotest.test_case "ab k=4" `Quick (equivalent_at_boot ~k:4 "ab");
          Alcotest.test_case "two-layer k=4" `Quick (equivalent_at_boot ~k:4 "two-layer");
          Alcotest.test_case "plain k=8" `Slow (equivalent_at_boot ~k:8 "plain");
          Alcotest.test_case "ab k=8" `Slow (equivalent_at_boot ~k:8 "ab");
          Alcotest.test_case "two-layer k=8" `Slow (equivalent_at_boot ~k:8 "two-layer");
          Alcotest.test_case "after failures" `Quick test_equivalent_after_failure ] );
      ( "language",
        [ Alcotest.test_case "typed errors with spans" `Quick test_typed_errors;
          Alcotest.test_case "lowering: or/restrict/tenant/contradiction" `Quick
            test_language_lowering ] );
      ( "seeded bugs",
        [ Alcotest.test_case "wrong prefix length" `Quick test_wrong_prefix_detected;
          Alcotest.test_case "dropped ECMP branch" `Quick test_drop_ecmp_detected;
          Alcotest.test_case "corruption name round trip" `Quick test_corruption_round_trip ] );
      ( "chaos",
        [ Alcotest.test_case "plain campaign" `Slow (policy_campaign ~seed:42 "plain");
          Alcotest.test_case "ab campaign" `Slow (policy_campaign ~seed:42 "ab");
          Alcotest.test_case "two-layer campaign" `Slow
            (policy_campaign ~seed:42 "two-layer") ] );
      ( "install",
        [ Alcotest.test_case "compiled tables drive the incremental verifier" `Quick
            test_install_drives_incremental;
          Alcotest.test_case "report JSON deterministic" `Quick
            test_report_json_deterministic ] ) ]
