(* Unit coverage for the unified observability layer: instrument
   registration/dedup, the null capability, probes, spans, snapshot
   determinism and the JSON/CSV exports. *)

let check_int = Testutil.check_int
let check_string = Testutil.check_string
let check_bool = Testutil.check_bool
let check_float_eps = Testutil.check_float_eps

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- instruments ---------------- *)

let test_counter_dedup () =
  let o = Obs.create () in
  let a = Obs.counter o ~subsystem:"s" ~name:"c" ~labels:[ ("sw", "3"); ("pod", "1") ] () in
  (* same key, labels in a different order: must be the same instrument *)
  let b = Obs.counter o ~subsystem:"s" ~name:"c" ~labels:[ ("pod", "1"); ("sw", "3") ] () in
  Obs.Counter.incr a;
  Obs.Counter.add b 2;
  check_int "shared count" 3 (Obs.Counter.value a);
  check_int "shared count (alias)" 3 (Obs.Counter.value b);
  (* a different label set is a different instrument *)
  let c = Obs.counter o ~subsystem:"s" ~name:"c" ~labels:[ ("sw", "4") ] () in
  check_int "distinct instrument" 0 (Obs.Counter.value c);
  check_int "snapshot has both" 2 (List.length (Obs.snapshot o))

let test_kind_mismatch () =
  let o = Obs.create () in
  ignore (Obs.counter o ~subsystem:"s" ~name:"x" ());
  (try
     ignore (Obs.gauge o ~subsystem:"s" ~name:"x" ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Obs.histogram o ~subsystem:"s" ~name:"x" ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_gauge () =
  let o = Obs.create () in
  let g = Obs.gauge o ~subsystem:"s" ~name:"level" () in
  Obs.Gauge.set g 1.5;
  Obs.Gauge.set g 2.5;
  check_float_eps "last write wins" ~eps:1e-9 2.5 (Obs.Gauge.value g);
  match Obs.find o ~subsystem:"s" ~name:"level" () with
  | Some (Obs.Value v) -> check_float_eps "find" ~eps:1e-9 2.5 v
  | _ -> Alcotest.fail "gauge not found"

let test_histogram_summary () =
  let o = Obs.create () in
  let h = Obs.histogram o ~subsystem:"s" ~name:"lat" () in
  List.iter (Obs.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Obs.Histogram.count h);
  match Obs.find o ~subsystem:"s" ~name:"lat" () with
  | Some (Obs.Summary s) ->
    check_int "n" 4 s.Obs.n;
    check_float_eps "mean" ~eps:1e-9 2.5 s.Obs.mean;
    check_float_eps "min" ~eps:1e-9 1.0 s.Obs.vmin;
    check_float_eps "max" ~eps:1e-9 4.0 s.Obs.vmax;
    check_float_eps "p50" ~eps:1e-9 2.0 s.Obs.p50
  | _ -> Alcotest.fail "histogram not found"

(* ---------------- the null capability ---------------- *)

let test_null () =
  let o = Obs.null in
  check_bool "disabled" false (Obs.enabled o);
  let c = Obs.counter o ~subsystem:"s" ~name:"c" () in
  Obs.Counter.incr c;
  check_int "dummy counter still counts locally" 1 (Obs.Counter.value c);
  Obs.add_probe o ~name:"p" (fun () -> Alcotest.fail "probe must never run");
  Obs.event o ~time:0 ~subsystem:"s" "dropped";
  let sp = Obs.span o ~time:0 ~subsystem:"s" ~name:"op" () in
  Obs.finish sp ~time:5;
  check_int "snapshot empty" 0 (List.length (Obs.snapshot o));
  check_bool "find empty" true (Obs.find o ~subsystem:"s" ~name:"c" () = None);
  (* registration on null hands back fresh dummies every time *)
  let c2 = Obs.counter o ~subsystem:"s" ~name:"c" () in
  check_int "fresh dummy" 0 (Obs.Counter.value c2)

let test_null_enabled_create () =
  check_bool "live registry is enabled" true (Obs.enabled (Obs.create ()))

(* ---------------- probes ---------------- *)

let test_probe_replacement () =
  let o = Obs.create () in
  Obs.add_probe o ~name:"fm" (fun () ->
      [ Obs.sample ~subsystem:"fm" ~name:"bindings" (Obs.Count 1) ]);
  (* same name: the new reader supersedes the old one *)
  Obs.add_probe o ~name:"fm" (fun () ->
      [ Obs.sample ~subsystem:"fm" ~name:"bindings" (Obs.Count 9) ]);
  match Obs.snapshot o with
  | [ s ] ->
    check_string "key" "fm/bindings" (Obs.sample_key s);
    (match s.Obs.value with
     | Obs.Count n -> check_int "latest wins" 9 n
     | _ -> Alcotest.fail "expected a count")
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

let test_snapshot_deterministic () =
  let build order =
    let o = Obs.create () in
    List.iter (fun (sub, name) -> ignore (Obs.counter o ~subsystem:sub ~name ())) order;
    Obs.add_probe o ~name:"p" (fun () ->
        [ Obs.sample ~subsystem:"zz" ~name:"probe" (Obs.Count 0) ]);
    List.map Obs.sample_key (Obs.snapshot o)
  in
  let keys1 = build [ ("b", "x"); ("a", "y"); ("a", "x") ] in
  let keys2 = build [ ("a", "x"); ("a", "y"); ("b", "x") ] in
  check_bool "order independent of registration" true (keys1 = keys2);
  check_bool "sorted" true (keys1 = List.sort compare keys1)

(* ---------------- spans ---------------- *)

let test_span () =
  let trace = Eventsim.Trace.create ~min_level:Eventsim.Trace.Debug () in
  let o = Obs.create ~trace () in
  let sp = Obs.span o ~time:(Eventsim.Time.ms 10) ~subsystem:"fabric" ~name:"conv" () in
  Obs.finish sp ~time:(Eventsim.Time.ms 35);
  (match Obs.find o ~subsystem:"fabric" ~name:"conv_ms" () with
   | Some (Obs.Summary s) ->
     check_int "one observation" 1 s.Obs.n;
     check_float_eps "duration ms" ~eps:1e-6 25.0 s.Obs.mean
   | _ -> Alcotest.fail "span histogram missing");
  check_int "begin+end events" 2 (Eventsim.Trace.count trace)

(* ---------------- export ---------------- *)

let test_to_json () =
  let o = Obs.create () in
  let c = Obs.counter o ~subsystem:"ldp" ~name:"ldm_tx" ~labels:[ ("sw", "3") ] () in
  Obs.Counter.add c 7;
  let s = Obs.Json.to_string (Obs.to_json o) in
  check_bool "has key" true (contains ~sub:"\"ldp/ldm_tx{sw=3}\"" s);
  check_bool "has type" true (contains ~sub:"\"counter\"" s);
  check_bool "has value" true (contains ~sub:"7" s)

let test_to_csv () =
  let o = Obs.create () in
  Obs.Counter.incr (Obs.counter o ~subsystem:"a" ~name:"c" ());
  Obs.Gauge.set (Obs.gauge o ~subsystem:"b" ~name:"g" ()) 1.5;
  let lines = String.split_on_char '\n' (String.trim (Obs.to_csv o)) in
  match lines with
  | [ header; row1; row2 ] ->
    check_string "header" "key,type,value,count,mean,min,max,p50,p99" header;
    check_bool "counter row" true (String.length row1 > 0 && String.sub row1 0 4 = "a/c,");
    check_bool "gauge row" true (String.length row2 > 0 && String.sub row2 0 4 = "b/g,")
  | l -> Alcotest.failf "expected 3 csv lines, got %d" (List.length l)

(* 4 domains hammering the same instruments and the registry itself:
   counters must not lose increments, histogram counts must balance, and
   concurrent registration/snapshot must neither crash nor duplicate *)
let test_multi_domain_hammer () =
  let o = Obs.create () in
  let c = Obs.counter o ~subsystem:"hammer" ~name:"hits" () in
  let h = Obs.histogram o ~subsystem:"hammer" ~name:"lat" () in
  let per_domain = 100_000 in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Counter.incr c;
              if i mod 100 = 0 then Obs.Histogram.observe h (float_of_int (i land 7));
              if i mod 10_000 = 0 then
                (* concurrent lookup-or-register on a shared name and a
                   per-domain one, racing the other domains *)
                Obs.Counter.incr (Obs.counter o ~subsystem:"hammer" ~name:"shared" ());
              if i mod 25_000 = 0 then
                ignore
                  (Obs.counter o ~subsystem:"hammer" ~name:"mine"
                     ~labels:[ ("d", string_of_int d) ] ());
              if i mod 10_000 = 0 then ignore (Obs.snapshot o)
            done))
  in
  Array.iter Domain.join workers;
  check_int "no lost increments" (4 * per_domain) (Obs.Counter.value c);
  check_int "no lost observations" (4 * (per_domain / 100)) (Obs.Histogram.count h);
  check_int "shared counter registered once" (4 * (per_domain / 10_000))
    (Obs.Counter.value (Obs.counter o ~subsystem:"hammer" ~name:"shared" ()));
  (* hits + lat + shared + 4 labelled = 7 hammer metrics, each exactly once *)
  let hammer_samples =
    List.filter (fun s -> s.Obs.subsystem = "hammer") (Obs.snapshot o)
  in
  check_int "registry has exactly the hammer metrics" 7 (List.length hammer_samples)

let test_json_scalars () =
  let open Obs.Json in
  check_string "null" "null" (to_string Null);
  check_string "escaping" "\"a\\\"b\"" (to_string (Str "a\"b"));
  check_string "nan is null" "null" (to_string (Float nan));
  check_string "nested" "{\"a\":[1,true]}" (to_string (Obj [ ("a", List [ Int 1; Bool true ]) ]))

let () =
  Alcotest.run "obs"
    [ ( "instruments",
        [ Alcotest.test_case "counter dedup & label order" `Quick test_counter_dedup;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary ] );
      ( "null",
        [ Alcotest.test_case "all operations are no-ops" `Quick test_null;
          Alcotest.test_case "live registry is enabled" `Quick test_null_enabled_create ] );
      ( "probes",
        [ Alcotest.test_case "replacement by name" `Quick test_probe_replacement;
          Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic ] );
      ("spans", [ Alcotest.test_case "span feeds histogram" `Quick test_span ]);
      ( "domain-safety",
        [ Alcotest.test_case "4-domain hammer loses nothing" `Quick test_multi_domain_hammer ] );
      ( "export",
        [ Alcotest.test_case "to_json" `Quick test_to_json;
          Alcotest.test_case "to_csv" `Quick test_to_csv;
          Alcotest.test_case "json scalars" `Quick test_json_scalars ] ) ]
