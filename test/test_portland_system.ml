(* End-to-end tests of the full PortLand fabric: discovery correctness
   against topological ground truth, forwarding, fault tolerance,
   migration, multicast and state bounds. *)

open Portland
open Netcore
open Eventsim
module MR = Topology.Multirooted

let udp ?(flow = 1) seq =
  Ipv4_pkt.Udp (Udp.make ~flow_id:flow ~app_seq:seq ~payload_len:100 ())

(* ---------------- discovery ---------------- *)

let test_discovery_levels () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let topo = mt.MR.topo in
  List.iter
    (fun agent ->
      let id = Switch_agent.switch_id agent in
      let expected =
        match (Topology.Topo.node topo id).Topology.Topo.kind with
        | Topology.Topo.Edge_switch -> Ldp_msg.Edge
        | Topology.Topo.Agg_switch -> Ldp_msg.Aggregation
        | Topology.Topo.Core_switch -> Ldp_msg.Core
        | Topology.Topo.Host -> Alcotest.fail "agent on a host"
      in
      Testutil.check_bool
        (Printf.sprintf "switch %d level" id)
        true
        (Switch_agent.level agent = Some expected))
    (Fabric.agents fab)

let test_discovery_pods_consistent () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  (* all edges wired in the same physical pod must share an assigned pod
     number, and distinct physical pods must get distinct numbers *)
  let assigned_pod_of dev =
    match Switch_agent.coords (Fabric.agent fab dev) with
    | Some (Coords.Edge { pod; _ }) -> pod
    | Some (Coords.Agg { pod; _ }) -> pod
    | _ -> Alcotest.failf "switch %d missing pod" dev
  in
  let pod_labels =
    Array.to_list
      (Array.map
         (fun edges ->
           let labels = Array.to_list (Array.map assigned_pod_of edges) in
           match List.sort_uniq compare labels with
           | [ l ] -> l
           | _ -> Alcotest.fail "edges of one physical pod got different pod numbers")
         mt.MR.edges)
  in
  Testutil.check_int "distinct pod labels" 4 (List.length (List.sort_uniq compare pod_labels));
  (* aggs agree with their pod's edges *)
  Array.iteri
    (fun p aggs ->
      Array.iter
        (fun a ->
          Testutil.check_int "agg pod matches edges" (List.nth pod_labels p) (assigned_pod_of a))
        aggs)
    mt.MR.aggs

let test_discovery_positions_unique () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  Array.iter
    (fun edges ->
      let positions =
        Array.to_list
          (Array.map
             (fun dev ->
               match Switch_agent.coords (Fabric.agent fab dev) with
               | Some (Coords.Edge { position; _ }) -> position
               | _ -> Alcotest.fail "edge without coords")
             edges)
      in
      Testutil.check_bool "unique positions in pod" true
        (List.sort_uniq compare positions = List.sort compare positions);
      List.iter
        (fun p -> Testutil.check_bool "position in range" true (p >= 0 && p < 2))
        positions)
    mt.MR.edges

let test_discovery_stripes_follow_wiring () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  (* two aggs (any pods) share a stripe label iff they share a core *)
  let stripe_of dev =
    match Switch_agent.coords (Fabric.agent fab dev) with
    | Some (Coords.Agg { stripe; _ }) -> stripe
    | _ -> Alcotest.fail "agg without coords"
  in
  let topo = mt.MR.topo in
  let cores_of dev =
    List.filter_map
      (fun (_, (e : Topology.Topo.endpoint)) ->
        let n = Topology.Topo.node topo e.Topology.Topo.node in
        if n.Topology.Topo.kind = Topology.Topo.Core_switch then Some n.Topology.Topo.id
        else None)
      (Topology.Topo.neighbors topo dev)
    |> List.sort compare
  in
  let aggs = Array.to_list mt.MR.aggs |> List.concat_map Array.to_list in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then begin
            let share_core =
              List.exists (fun c -> List.mem c (cores_of b)) (cores_of a)
            in
            Testutil.check_bool "stripe label consistency" share_core
              (stripe_of a = stripe_of b)
          end)
        aggs)
    aggs

let test_host_bindings_registered () =
  let fab = Testutil.converged_fabric () in
  let fm = Fabric.fabric_manager fab in
  Testutil.check_int "all hosts bound" 16 (Fabric_manager.binding_count fm);
  List.iter
    (fun h ->
      match Fabric_manager.resolve fm (Host_agent.ip h) with
      | Some pmac ->
        Testutil.check_bool "pmac is valid unicast" true (Pmac.is_pmac (Pmac.to_mac pmac))
      | None -> Alcotest.fail "host missing from fabric manager")
    (Fabric.hosts fab);
  Testutil.assert_verified ~msg:"after discovery" fab

(* ---------------- forwarding ---------------- *)

let test_all_pairs_connectivity () =
  let fab = Testutil.converged_fabric () in
  let hosts = Array.of_list (Fabric.hosts fab) in
  let received = Array.make (Array.length hosts) 0 in
  Array.iteri (fun i h -> Host_agent.set_rx h (fun _ -> received.(i) <- received.(i) + 1)) hosts;
  let sent = ref 0 in
  Array.iteri
    (fun i src ->
      Array.iteri
        (fun j dst ->
          if i <> j then begin
            Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp !sent);
            incr sent
          end)
        hosts)
    hosts;
  Fabric.run_for fab (Time.ms 200);
  let total = Array.fold_left ( + ) 0 received in
  Testutil.check_int "every pair delivered" (16 * 15) total

let test_path_lengths () =
  let fab = Testutil.converged_fabric () in
  let check_len ~src ~dst expected =
    match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) (udp 0) with
    | Ok path -> Testutil.check_int "path nodes" expected (List.length path)
    | Error e -> Alcotest.fail e
  in
  (* same edge: host-edge-host *)
  check_len ~src:(Fabric.host fab ~pod:0 ~edge:0 ~slot:0)
    ~dst:(Fabric.host fab ~pod:0 ~edge:0 ~slot:1) 3;
  (* same pod: host-edge-agg-edge-host *)
  check_len ~src:(Fabric.host fab ~pod:0 ~edge:0 ~slot:0)
    ~dst:(Fabric.host fab ~pod:0 ~edge:1 ~slot:0) 5;
  (* inter-pod: host-edge-agg-core-agg-edge-host *)
  check_len ~src:(Fabric.host fab ~pod:0 ~edge:0 ~slot:0)
    ~dst:(Fabric.host fab ~pod:3 ~edge:1 ~slot:1) 7

let test_loop_freedom_sampled () =
  let fab = Testutil.converged_fabric () in
  let hosts = Array.of_list (Fabric.hosts fab) in
  let prng = Prng.create 7 in
  for _ = 1 to 60 do
    let src = Prng.pick prng hosts in
    let dst = ref (Prng.pick prng hosts) in
    while Host_agent.device_id !dst = Host_agent.device_id src do
      dst := Prng.pick prng hosts
    done;
    let sport = Prng.int prng 60000 and dport = Prng.int prng 60000 in
    let payload =
      Ipv4_pkt.Udp
        (Udp.make ~src_port:sport ~dst_port:dport ~flow_id:1 ~app_seq:0 ~payload_len:64 ())
    in
    match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip !dst) payload with
    | Ok path -> Testutil.check_bool "bounded path" true (List.length path <= 7)
    | Error e -> Alcotest.failf "trace failed: %s" e
  done

let test_ecmp_uses_multiple_cores () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  let cores_used = Hashtbl.create 4 in
  for sport = 1000 to 1063 do
    let payload =
      Ipv4_pkt.Udp (Udp.make ~src_port:sport ~flow_id:1 ~app_seq:0 ~payload_len:64 ())
    in
    match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) payload with
    | Ok path ->
      List.iter
        (fun dev ->
          if Array.exists (fun c -> c = dev) mt.MR.cores then Hashtbl.replace cores_used dev ())
        path
    | Error e -> Alcotest.fail e
  done;
  Testutil.check_bool "spreads over >= 3 cores" true (Hashtbl.length cores_used >= 3)

let test_src_rewritten_to_pmac () =
  let fab = Testutil.converged_fabric () in
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  (* capture the raw frame at the destination NIC *)
  let seen_src = ref None in
  Switchfab.Net.set_handler
    (Switchfab.Net.device (Fabric.net fab) (Host_agent.device_id dst))
    (fun _ f -> seen_src := Some f.Eth.src);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  match !seen_src with
  | Some mac ->
    Testutil.check_bool "source is a PMAC, not the AMAC" true (Pmac.is_pmac mac);
    Testutil.check_bool "not the amac" false (Mac_addr.equal mac (Host_agent.amac src))
  | None -> Alcotest.fail "no frame captured"

(* ---------------- fault tolerance ---------------- *)

let test_single_failure_convergence () =
  match Harness.Exp_udp_convergence.single_trial ~k:4 ~failures:1 ~seed:11 with
  | Some ms -> Testutil.check_bool "under 100 ms" true (ms < 100.0 && ms > 1.0)
  | None -> Alcotest.fail "trial unusable"

let test_link_recovery_restores_paths () =
  let fab = Testutil.converged_fabric () in
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  (* resolve ARP once *)
  let got = ref 0 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  let path = Result.get_ok (Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) (udp 0)) in
  let sw1 = List.nth path 1 and sw2 = List.nth path 2 in
  ignore (Fabric.fail_link_between fab ~a:sw1 ~b:sw2);
  Fabric.run_for fab (Time.ms 200);
  let path2 = Result.get_ok (Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) (udp 0)) in
  Testutil.check_bool "rerouted" true (path2 <> path);
  Testutil.assert_verified ~msg:"after injected failure" fab;
  ignore (Fabric.recover_link_between fab ~a:sw1 ~b:sw2);
  Fabric.run_for fab (Time.ms 200);
  (* after recovery the fault matrix is empty again *)
  Testutil.check_int "fault matrix empty" 0
    (List.length (Fabric_manager.fault_set (Fabric.fabric_manager fab)));
  Testutil.assert_verified ~msg:"after recovery" fab;
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 1);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "traffic flows" 2 !got

let test_agg_switch_failure () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  let got = ref 0 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "before" 1 !got;
  (* kill a whole aggregation switch in the source pod *)
  Fabric.fail_switch fab mt.MR.aggs.(0).(0);
  Fabric.run_for fab (Time.ms 300);
  Testutil.assert_verified ~msg:"after agg switch death" fab;
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 1);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 2);
  Fabric.run_for fab (Time.ms 100);
  Testutil.check_int "after agg death" 3 !got

let test_fault_update_idempotent () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  ignore (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(0));
  Fabric.run_for fab (Time.ms 200);
  let n1 = List.length (Fabric_manager.fault_set (Fabric.fabric_manager fab)) in
  Testutil.check_int "one coordinate fault" 1 n1;
  (* both endpoints report; dedup must hold over further LDM rounds *)
  Fabric.run_for fab (Time.ms 200);
  Testutil.check_int "still one" 1
    (List.length (Fabric_manager.fault_set (Fabric.fabric_manager fab)))

(* ---------------- migration ---------------- *)

let test_migration_end_to_end () =
  let fab = Testutil.converged_fabric ~spare_slots:[ (1, 0, 0) ] () in
  let client = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let got = ref 0 in
  Host_agent.set_rx vm (fun _ -> incr got);
  Host_agent.send_ip client ~dst:(Host_agent.ip vm) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "pre-migration" 1 !got;
  let old_pmac = Option.get (Fabric_manager.resolve (Fabric.fabric_manager fab) (Host_agent.ip vm)) in
  Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 100) ();
  Fabric.run_for fab (Time.ms 300);
  let new_pmac = Option.get (Fabric_manager.resolve (Fabric.fabric_manager fab) (Host_agent.ip vm)) in
  Testutil.check_bool "pmac changed" false (Pmac.equal old_pmac new_pmac);
  Testutil.check_int "new pod" 1 new_pmac.Pmac.pod;
  Testutil.assert_verified ~msg:"after migration" fab;
  (* keep pinging until the corrective gratuitous ARP heals the client *)
  for i = 1 to 5 do
    Host_agent.send_ip client ~dst:(Host_agent.ip vm) (udp i);
    Fabric.run_for fab (Time.ms 50)
  done;
  Testutil.check_bool "reachable after migration" true (!got >= 2);
  (* client's ARP cache now holds the new PMAC *)
  match Host_agent.arp_lookup client (Host_agent.ip vm) with
  | Some mac -> Testutil.check_bool "cache healed" true
                  (Mac_addr.equal mac (Pmac.to_mac new_pmac))
  | None -> Alcotest.fail "client has no mapping"

let test_migration_trap_counters () =
  let fab = Testutil.converged_fabric ~spare_slots:[ (1, 0, 0) ] () in
  let client = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let vm = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  Host_agent.send_ip client ~dst:(Host_agent.ip vm) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  let mt = Fabric.tree fab in
  let old_edge = Fabric.agent fab mt.MR.edges.(3).(1) in
  Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 100) ();
  Fabric.run_for fab (Time.ms 200);
  (* a packet to the stale PMAC must hit the trap and trigger a corrective ARP *)
  Host_agent.send_ip client ~dst:(Host_agent.ip vm) (udp 1);
  Fabric.run_for fab (Time.ms 100);
  let c = Switch_agent.counters old_edge in
  Testutil.check_bool "trap hit" true (c.Switch_agent.trap_hits >= 1);
  Testutil.check_bool "corrective arp sent" true (c.Switch_agent.corrective_arps >= 1)

(* ---------------- multicast ---------------- *)

let test_multicast_delivery () =
  let fab = Testutil.converged_fabric () in
  let group = Ipv4_addr.of_string_exn "232.0.0.9" in
  let sender = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let r1 = Fabric.host fab ~pod:1 ~edge:0 ~slot:0 in
  let r2 = Fabric.host fab ~pod:2 ~edge:1 ~slot:1 in
  let nonmember = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  let c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
  Host_agent.set_rx r1 (fun _ -> incr c1);
  Host_agent.set_rx r2 (fun _ -> incr c2);
  Host_agent.set_rx nonmember (fun _ -> incr c3);
  Host_agent.join_group r1 group;
  Host_agent.join_group r2 group;
  Fabric.run_for fab (Time.ms 20);
  for i = 0 to 9 do
    Host_agent.send_ip sender ~dst:group (udp i)
  done;
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "r1 got all" 10 !c1;
  Testutil.check_int "r2 got all" 10 !c2;
  Testutil.check_int "nonmember got none" 0 !c3

let test_multicast_leave () =
  let fab = Testutil.converged_fabric () in
  let group = Ipv4_addr.of_string_exn "232.0.0.10" in
  let sender = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let r = Fabric.host fab ~pod:2 ~edge:0 ~slot:0 in
  let c = ref 0 in
  Host_agent.set_rx r (fun _ -> incr c);
  Host_agent.join_group r group;
  Fabric.run_for fab (Time.ms 20);
  Host_agent.send_ip sender ~dst:group (udp 0);
  Fabric.run_for fab (Time.ms 20);
  Testutil.check_int "joined" 1 !c;
  Host_agent.leave_group r group;
  Fabric.run_for fab (Time.ms 20);
  Host_agent.send_ip sender ~dst:group (udp 1);
  Fabric.run_for fab (Time.ms 20);
  Testutil.check_int "left" 1 !c;
  Testutil.check_bool "tree torn down" true
    (Fabric_manager.group_core (Fabric.fabric_manager fab) group = None)

let test_broadcast_reaches_every_host () =
  (* non-ARP broadcast rides a special multicast tree spanning every
     host (paper §3.4) *)
  let fab = Testutil.converged_fabric () in
  let hosts = Array.of_list (Fabric.hosts fab) in
  let received = Array.make (Array.length hosts) 0 in
  Array.iteri (fun i h -> Host_agent.set_rx h (fun _ -> received.(i) <- received.(i) + 1)) hosts;
  let sender = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  Host_agent.send_ip sender ~dst:Ipv4_addr.broadcast (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Array.iteri
    (fun i h ->
      let expected = if Host_agent.device_id h = Host_agent.device_id sender then 0 else 1 in
      Testutil.check_int (Printf.sprintf "host %d exactly once" i) expected received.(i))
    hosts;
  (* the tree heals around failures like any multicast tree *)
  let fm = Fabric.fabric_manager fab in
  (match Fabric_manager.group_core fm Ipv4_addr.broadcast with
   | Some core ->
     let agg =
       List.find
         (fun a ->
           match (Switch_agent.coords a, Fabric_manager.switch_coords fm core) with
           | Some (Coords.Agg g), Some (Coords.Core c) -> g.stripe = c.stripe && g.pod = 0
           | _ -> false)
         (Fabric.agents fab)
     in
     ignore (Fabric.fail_link_between fab ~a:core ~b:(Switch_agent.switch_id agg))
   | None -> Alcotest.fail "no broadcast tree");
  Fabric.run_for fab (Time.ms 300);
  Host_agent.send_ip sender ~dst:Ipv4_addr.broadcast (udp 1);
  Fabric.run_for fab (Time.ms 50);
  let total = Array.fold_left ( + ) 0 received in
  Testutil.check_int "second broadcast after failure" (2 * (Array.length hosts - 1)) total

let test_multicast_same_edge_receivers () =
  let fab = Testutil.converged_fabric () in
  let group = Ipv4_addr.of_string_exn "232.0.0.11" in
  let sender = Fabric.host fab ~pod:1 ~edge:1 ~slot:0 in
  let r1 = Fabric.host fab ~pod:2 ~edge:0 ~slot:0 in
  let r2 = Fabric.host fab ~pod:2 ~edge:0 ~slot:1 in
  let c1 = ref 0 and c2 = ref 0 in
  Host_agent.set_rx r1 (fun _ -> incr c1);
  Host_agent.set_rx r2 (fun _ -> incr c2);
  Host_agent.join_group r1 group;
  Host_agent.join_group r2 group;
  Fabric.run_for fab (Time.ms 20);
  Host_agent.send_ip sender ~dst:group (udp 0);
  Fabric.run_for fab (Time.ms 20);
  Testutil.check_int "r1" 1 !c1;
  Testutil.check_int "r2" 1 !c2

(* ---------------- state bounds ---------------- *)

let test_state_is_o_k () =
  let fab = Testutil.converged_fabric () in
  (* k=4 bounds: edge <= bcast-punt(1) + bcast-tree(1) + hosts(2) +
     samepod(1) + pods(3) = 8 (+ overrides only under faults);
     agg <= down(2) + pods(3) + bcast-tree(1) = 6;
     core <= pods(4) + bcast-tree(1) = 5 *)
  List.iter
    (fun (level, size) ->
      let bound =
        match level with
        | Ldp_msg.Edge -> 8
        | Ldp_msg.Aggregation -> 6
        | Ldp_msg.Core -> 5
      in
      Testutil.check_bool
        (Printf.sprintf "%s state bound" (Ldp_msg.level_to_string level))
        true (size <= bound))
    (Fabric.switch_table_sizes fab)

let test_random_faults_preserve_connectivity () =
  (* property: any physically survivable set of fabric-link failures
     leaves the pair connected through the healed tables, with a bounded
     loop-free path *)
  for trial = 0 to 4 do
    let seed = 1000 + (trial * 17) in
    let fab = Testutil.converged_fabric ~seed () in
    let mt = Fabric.tree fab in
    let hosts = Array.of_list (Fabric.hosts fab) in
    let prng = Prng.create seed in
    let src = Prng.pick prng hosts in
    let dst = ref (Prng.pick prng hosts) in
    while Host_agent.device_id !dst = Host_agent.device_id src do
      dst := Prng.pick prng hosts
    done;
    let dst = !dst in
    let candidates = Workloads.Failure_plan.switch_links mt in
    (match
       Workloads.Failure_plan.pick_survivable prng mt ~candidates
         ~src_host:(Host_agent.device_id src) ~dst_host:(Host_agent.device_id dst) ~n:2
     with
     | Some faults ->
       List.iter (fun (a, b) -> ignore (Fabric.fail_link_between fab ~a ~b)) faults;
       Fabric.run_for fab (Time.ms 300);
       let got = ref 0 in
       Host_agent.set_rx dst (fun _ -> incr got);
       Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp trial);
       Fabric.run_for fab (Time.ms 100);
       Testutil.check_int (Printf.sprintf "trial %d delivered" trial) 1 !got;
       (match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) (udp trial) with
        | Ok path ->
          Testutil.check_bool "loop-free under faults" true (List.length path <= 7)
        | Error e -> Alcotest.failf "trial %d trace: %s" trial e)
     | None -> () (* no survivable pair for this draw: skip *))
  done

let test_fuzz_operations () =
  (* randomized sequences of disruptive operations; after every step, any
     physically connected host pair must still communicate with bounded,
     loop-free paths *)
  for run = 0 to 2 do
    let seed = 3000 + (run * 29) in
    let fab = Testutil.converged_fabric ~seed () in
    let mt = Fabric.tree fab in
    let prng = Prng.create seed in
    let all_links = Array.of_list (Workloads.Failure_plan.switch_links mt) in
    let failed = ref [] in
    let link_idx (a, b) =
      let links = Topology.Topo.links mt.MR.topo in
      let found = ref None in
      Array.iteri
        (fun i (l : Topology.Topo.link) ->
          let la = l.Topology.Topo.a.Topology.Topo.node
          and lb = l.Topology.Topo.b.Topology.Topo.node in
          if (la = a && lb = b) || (la = b && lb = a) then found := Some i)
        links;
      Option.get !found
    in
    let hosts = Array.of_list (Fabric.hosts fab) in
    let step op_num =
      (match Prng.int prng 4 with
       | 0 when List.length !failed < 3 ->
         let l = Prng.pick prng all_links in
         if not (List.mem l !failed) then begin
           ignore (Fabric.fail_link_between fab ~a:(fst l) ~b:(snd l));
           failed := l :: !failed
         end
       | 1 ->
         (match !failed with
          | l :: rest ->
            ignore (Fabric.recover_link_between fab ~a:(fst l) ~b:(snd l));
            failed := rest
          | [] -> ())
       | 2 -> Host_agent.flush_arp_cache (Prng.pick prng hosts)
       | _ -> if op_num = 4 then Fabric.restart_fabric_manager fab);
      Fabric.run_for fab (Time.ms 300);
      (* invariant: physically connected pairs still talk *)
      let excluded = List.map link_idx !failed in
      for _ = 1 to 3 do
        let src = Prng.pick prng hosts in
        let dst = ref (Prng.pick prng hosts) in
        while Host_agent.device_id !dst = Host_agent.device_id src do
          dst := Prng.pick prng hosts
        done;
        let dst = !dst in
        if
          Topology.Paths.reachable ~excluded_links:excluded mt.MR.topo
            ~src:(Host_agent.device_id src) ~dst:(Host_agent.device_id dst)
        then begin
          let got = ref 0 in
          Host_agent.set_rx dst (fun _ -> incr got);
          let ok = ref false in
          for i = 0 to 4 do
            if not !ok then begin
              Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp i);
              Fabric.run_for fab (Time.ms 100);
              if !got > 0 then ok := true
            end
          done;
          if not !ok then
            Alcotest.failf "fuzz run %d op %d: %s -> %s unreachable with %d faults" run op_num
              (Ipv4_addr.to_string (Host_agent.ip src))
              (Ipv4_addr.to_string (Host_agent.ip dst))
              (List.length !failed)
        end
      done
    in
    for op = 0 to 7 do
      step op
    done
  done

let test_deterministic_runs () =
  let run () =
    let fab = Testutil.converged_fabric ~seed:123 () in
    let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
    let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
    Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
    Fabric.run_for fab (Time.ms 50);
    ( Result.get_ok (Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) (udp 0)),
      Engine.events_processed (Fabric.engine fab) )
  in
  let p1, e1 = run () in
  let p2, e2 = run () in
  Testutil.check_bool "identical paths" true (p1 = p2);
  Testutil.check_int "identical event counts" e1 e2

(* ---------------- multiple VMs per port ---------------- *)

let test_multiple_vms_share_a_port () =
  let fab = Testutil.converged_fabric () in
  let machine = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  (* a guest VM behind the same NIC, with its own AMAC and IP *)
  let guest_ip = Ipv4_addr.of_octets 10 0 0 200 in
  Host_agent.add_vm machine ~amac:(Mac_addr.of_int 0x02000000AA01) ~ip:guest_ip;
  Fabric.run_for fab (Time.ms 20);
  let fm = Fabric.fabric_manager fab in
  (match (Fabric_manager.resolve fm (Host_agent.ip machine), Fabric_manager.resolve fm guest_ip)
   with
   | Some host_pmac, Some guest_pmac ->
     (* same pod, position and port — only the vmid differs *)
     Testutil.check_int "same pod" host_pmac.Pmac.pod guest_pmac.Pmac.pod;
     Testutil.check_int "same position" host_pmac.Pmac.position guest_pmac.Pmac.position;
     Testutil.check_int "same port" host_pmac.Pmac.port guest_pmac.Pmac.port;
     Testutil.check_bool "distinct vmids" true (host_pmac.Pmac.vmid <> guest_pmac.Pmac.vmid)
   | _ -> Alcotest.fail "guest VM not registered at the fabric manager");
  (* a remote host reaches both the machine and the guest *)
  let remote = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  let to_host = ref 0 and to_guest = ref 0 in
  Host_agent.set_rx machine (fun pkt ->
      if Ipv4_addr.equal pkt.Ipv4_pkt.dst guest_ip then incr to_guest else incr to_host);
  Host_agent.send_ip remote ~dst:(Host_agent.ip machine) (udp 0);
  Host_agent.send_ip remote ~dst:guest_ip (udp 1);
  Fabric.run_for fab (Time.ms 100);
  Testutil.check_int "host reached" 1 !to_host;
  Testutil.check_int "guest reached" 1 !to_guest;
  (* and the guest can talk back, sourced from its own interface *)
  let back = ref 0 in
  Host_agent.set_rx remote (fun pkt ->
      if Ipv4_addr.equal pkt.Ipv4_pkt.src guest_ip then incr back);
  Host_agent.send_ip_as machine ~src_ip:guest_ip ~dst:(Host_agent.ip remote) (udp 2);
  Fabric.run_for fab (Time.ms 100);
  Testutil.check_int "guest-sourced reply" 1 !back;
  Testutil.check_bool "duplicate IP rejected" true
    (try
       Host_agent.add_vm machine ~amac:(Mac_addr.of_int 0x02000000AA02) ~ip:guest_ip;
       false
     with Invalid_argument _ -> true)

(* ---------------- deployment generality ---------------- *)

let test_staggered_boot () =
  (* racks power on over half a second in seed-random order: discovery
     must converge anyway *)
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~seed:77 ~boot_jitter:(Time.ms 500) ~k:4 () in
  Testutil.check_bool "converged despite staggered boot" true
    (Fabric.await_convergence ~timeout:(Time.sec 10) fab);
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:2 ~edge:1 ~slot:1 in
  let got = ref 0 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "traffic flows" 1 !got

let test_non_fattree_multirooted () =
  (* PortLand claims any multi-rooted tree: a 3-pod, oversubscribed,
     non-fat-tree instance must self-configure and forward *)
  let spec =
    { MR.wiring = MR.Stripes; num_pods = 3; edges_per_pod = 2; aggs_per_pod = 2;
      hosts_per_edge = 3; num_cores = 4 }
  in
  let fab = Portland.Fabric.create (Fabric.Config.make spec) in
  Testutil.check_bool "converged" true (Fabric.await_convergence fab);
  Testutil.check_int "all 18 hosts bound" 18
    (Fabric_manager.binding_count (Fabric.fabric_manager fab));
  (* sample pings across every pod pair *)
  let ping src dst =
    let got = ref 0 in
    Host_agent.set_rx dst (fun _ -> incr got);
    Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
    Fabric.run_for fab (Time.ms 50);
    !got = 1
  in
  for p1 = 0 to 2 do
    for p2 = 0 to 2 do
      if p1 <> p2 then
        Testutil.check_bool
          (Printf.sprintf "pod %d -> pod %d" p1 p2)
          true
          (ping (Fabric.host fab ~pod:p1 ~edge:0 ~slot:0) (Fabric.host fab ~pod:p2 ~edge:1 ~slot:2))
    done
  done;
  (* a failure on this asymmetric instance also heals *)
  let mt = Fabric.tree fab in
  ignore (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(0));
  Fabric.run_for fab (Time.ms 200);
  Testutil.check_bool "post-failure connectivity" true
    (ping (Fabric.host fab ~pod:0 ~edge:0 ~slot:0) (Fabric.host fab ~pod:2 ~edge:0 ~slot:1))

(* ---------------- fabric-manager soft state ---------------- *)

let test_fm_restart_rebuilds_soft_state () =
  let fab = Testutil.converged_fabric () in
  let coords_before =
    List.map
      (fun a -> (Switch_agent.switch_id a, Switch_agent.coords a))
      (Fabric.agents fab)
  in
  Fabric.restart_fabric_manager fab;
  Testutil.check_int "fresh instance is empty" 0
    (Fabric_manager.binding_count (Fabric.fabric_manager fab));
  Fabric.run_for fab (Time.ms 100);
  let fm = Fabric.fabric_manager fab in
  Testutil.check_int "bindings reconstructed" 16 (Fabric_manager.binding_count fm);
  (* every switch kept exactly the coordinates it had *)
  List.iter
    (fun (id, c) ->
      Testutil.check_bool "coords preserved" true (Fabric_manager.switch_coords fm id = c))
    coords_before;
  (* ARP service works again: a host with a flushed cache can resolve *)
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  Host_agent.flush_arp_cache src;
  let got = ref 0 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "traffic after restart" 1 !got

let test_fm_restart_during_faults () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  (* a pre-existing fault; the new instance learns of new faults only, so
     recovery of the old one must still work via recovery notices *)
  ignore (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(0));
  Fabric.run_for fab (Time.ms 200);
  Fabric.restart_fabric_manager fab;
  Fabric.run_for fab (Time.ms 100);
  (* traffic still flows around the dead link (switches kept their local
     fault state and tables) *)
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:3 ~edge:0 ~slot:0 in
  let got = ref 0 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 100);
  Testutil.check_int "flows around old fault" 1 !got;
  (* a new failure after the restart is handled by the new instance *)
  ignore (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(1));
  Fabric.run_for fab (Time.ms 300);
  Testutil.check_bool "new instance tracks new faults" true
    (List.length (Fabric_manager.fault_set (Fabric.fabric_manager fab)) >= 1)

let trace_messages fab =
  List.map (fun e -> e.Eventsim.Trace.message) (Eventsim.Trace.entries (Fabric.trace fab))

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_trace_records_lifecycle () =
  let fab = Testutil.converged_fabric ~spare_slots:[ (1, 0, 0) ] () in
  let msgs = trace_messages fab in
  (* every switch got coordinates: 20 assignment entries *)
  let assigns = List.filter (contains_substring ~needle:"assigned") msgs in
  Testutil.check_int "assignment entries" 20 (List.length assigns);
  (* a failure shows up *)
  let mt = Fabric.tree fab in
  ignore (Fabric.fail_link_between fab ~a:mt.MR.edges.(0).(0) ~b:mt.MR.aggs.(0).(0));
  Fabric.run_for fab (Time.ms 200);
  Testutil.check_bool "fault entry" true
    (List.exists (contains_substring ~needle:"fault matrix") (trace_messages fab));
  (* a migration shows up from both the fabric and the fabric manager *)
  let vm = Fabric.host fab ~pod:3 ~edge:1 ~slot:1 in
  Fabric.migrate fab ~vm ~to_:(1, 0, 0) ~downtime:(Time.ms 50) ();
  Fabric.run_for fab (Time.ms 200);
  let msgs = trace_messages fab in
  Testutil.check_bool "migration initiated" true
    (List.exists (contains_substring ~needle:"migrating VM") msgs);
  Testutil.check_bool "migration observed by FM" true
    (List.exists (contains_substring ~needle:"migration:") msgs)

let test_scale_k12 () =
  (* 432 hosts, 180 switches: discovery, state bounds and forwarding all
     hold at a size an order of magnitude past the paper's testbed *)
  let k = 12 in
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ~k () in
  Testutil.check_bool "k=12 converges" true (Fabric.await_convergence ~timeout:(Time.sec 10) fab);
  Testutil.check_int "all bindings" (Topology.Fattree.num_hosts ~k)
    (Fabric_manager.binding_count (Fabric.fabric_manager fab));
  (* O(k) state bounds (+1 everywhere for the broadcast tree entry):
     edge <= 2 + k/2 + (k/2 - 1) + (k - 1) *)
  List.iter
    (fun (level, size) ->
      let bound =
        match level with
        | Ldp_msg.Edge -> 2 + (k / 2) + (k / 2 - 1) + (k - 1)
        | Ldp_msg.Aggregation -> (k / 2) + (k - 1) + 1
        | Ldp_msg.Core -> k + 1
      in
      Testutil.check_bool "state bound at k=12" true (size <= bound))
    (Fabric.switch_table_sizes fab);
  (* sample connectivity across far corners *)
  let got = ref 0 in
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:11 ~edge:5 ~slot:5 in
  Host_agent.set_rx dst (fun _ -> incr got);
  Host_agent.send_ip src ~dst:(Host_agent.ip dst) (udp 0);
  Fabric.run_for fab (Time.ms 50);
  Testutil.check_int "corner-to-corner" 1 !got

(* ---------------- topology family matrix ---------------- *)

(* every family member, at k=4 and k=8: boot, converge, verifier-clean,
   and every host pair exchanges a datagram *)
let test_family_matrix family k () =
  let family = Topology.Topo.Family.of_string ~k family |> Result.get_ok in
  let fab = Testutil.converged_family family in
  let spec = Fabric.spec fab in
  Testutil.check_int "all hosts bound"
    (spec.MR.num_pods * spec.MR.edges_per_pod * spec.MR.hosts_per_edge)
    (Fabric_manager.binding_count (Fabric.fabric_manager fab));
  Testutil.assert_verified ~msg:(Topology.Topo.Family.to_string family) fab;
  Testutil.assert_all_pairs_deliver fab

(* the AB wiring survives an agg–core cut: re-converges and stays clean *)
let test_ab_failure_reconverges () =
  let fab = Testutil.converged_family (Topology.Topo.Family.Ab { k = 4 }) in
  let mt = Fabric.tree fab in
  (* cut an uplink of an odd (type-B, transposed) pod *)
  let spec = Fabric.spec fab in
  let agg = mt.MR.aggs.(1).(0) in
  let core = mt.MR.cores.(MR.agg_uplink_core_index spec ~pod:1 ~agg_pos:0 ~j:1) in
  Testutil.check_bool "cut applies" true (Fabric.fail_link_between fab ~a:agg ~b:core);
  Fabric.run_for fab (Time.ms 300);
  Testutil.assert_verified ~msg:"ab after agg-core cut" fab;
  Testutil.assert_all_pairs_deliver ~msg:"ab delivery after cut" fab;
  Testutil.check_bool "recovery applies" true (Fabric.recover_link_between fab ~a:agg ~b:core);
  Fabric.run_for fab (Time.ms 300);
  Testutil.assert_verified ~msg:"ab after recovery" fab

(* two-layer: spine loss degrades to the surviving spines *)
let test_two_layer_spine_loss () =
  let fab = Testutil.converged_family (Topology.Topo.Family.of_string ~k:4 "two-layer" |> Result.get_ok) in
  let mt = Fabric.tree fab in
  Fabric.fail_switch fab mt.MR.cores.(0);
  Fabric.run_for fab (Time.ms 300);
  Testutil.assert_verified ~msg:"two-layer after spine loss" fab;
  Testutil.assert_all_pairs_deliver ~msg:"two-layer delivery after spine loss" fab

let test_spare_slot_rejected () =
  let fab = Testutil.converged_fabric ~spare_slots:[ (1, 0, 0) ] () in
  (try
     ignore (Fabric.host fab ~pod:1 ~edge:0 ~slot:0);
     Alcotest.fail "spare slot returned a host"
   with Invalid_argument _ -> ());
  (* and the fabric still converged with 15 plugged hosts *)
  Testutil.check_int "bindings" 15 (Fabric_manager.binding_count (Fabric.fabric_manager fab))

let () =
  Alcotest.run "portland-system"
    [ ( "discovery",
        [ Alcotest.test_case "levels match ground truth" `Quick test_discovery_levels;
          Alcotest.test_case "pods consistent" `Quick test_discovery_pods_consistent;
          Alcotest.test_case "positions unique" `Quick test_discovery_positions_unique;
          Alcotest.test_case "stripes follow wiring" `Quick test_discovery_stripes_follow_wiring;
          Alcotest.test_case "host bindings registered" `Quick test_host_bindings_registered ] );
      ( "forwarding",
        [ Alcotest.test_case "all-pairs connectivity" `Quick test_all_pairs_connectivity;
          Alcotest.test_case "path lengths" `Quick test_path_lengths;
          Alcotest.test_case "loop freedom (sampled)" `Quick test_loop_freedom_sampled;
          Alcotest.test_case "ECMP spreads over cores" `Quick test_ecmp_uses_multiple_cores;
          Alcotest.test_case "source rewritten to PMAC" `Quick test_src_rewritten_to_pmac ] );
      ( "fault tolerance",
        [ Alcotest.test_case "single-failure convergence" `Quick test_single_failure_convergence;
          Alcotest.test_case "recovery restores paths" `Quick test_link_recovery_restores_paths;
          Alcotest.test_case "aggregation switch failure" `Quick test_agg_switch_failure;
          Alcotest.test_case "fault updates idempotent" `Quick test_fault_update_idempotent ] );
      ( "migration",
        [ Alcotest.test_case "end to end" `Quick test_migration_end_to_end;
          Alcotest.test_case "trap counters" `Quick test_migration_trap_counters ] );
      ( "multicast",
        [ Alcotest.test_case "delivery to members only" `Quick test_multicast_delivery;
          Alcotest.test_case "leave tears down" `Quick test_multicast_leave;
          Alcotest.test_case "same-edge receivers" `Quick test_multicast_same_edge_receivers;
          Alcotest.test_case "broadcast as a multicast group" `Quick
            test_broadcast_reaches_every_host ] );
      ( "virtual machines",
        [ Alcotest.test_case "multiple VMs share one port (vmid)" `Quick
            test_multiple_vms_share_a_port ] );
      ( "deployment generality",
        [ Alcotest.test_case "staggered boot" `Quick test_staggered_boot;
          Alcotest.test_case "non-fat-tree multi-rooted tree" `Quick
            test_non_fattree_multirooted ] );
      ( "fabric-manager soft state",
        [ Alcotest.test_case "restart rebuilds everything" `Quick
            test_fm_restart_rebuilds_soft_state;
          Alcotest.test_case "restart amid faults" `Quick test_fm_restart_during_faults ] );
      ( "properties",
        [ Alcotest.test_case "random faults keep connectivity" `Quick
            test_random_faults_preserve_connectivity;
          Alcotest.test_case "fuzzed operation sequences" `Quick test_fuzz_operations;
          Alcotest.test_case "state is O(k)" `Quick test_state_is_o_k;
          Alcotest.test_case "runs are deterministic" `Quick test_deterministic_runs;
          Alcotest.test_case "trace records lifecycle" `Quick test_trace_records_lifecycle;
          Alcotest.test_case "scale: k=12 (432 hosts)" `Slow test_scale_k12;
          Alcotest.test_case "spare slots" `Quick test_spare_slot_rejected ] );
      ( "topology family",
        [ Alcotest.test_case "plain k=4" `Quick (test_family_matrix "plain" 4);
          Alcotest.test_case "plain k=8" `Quick (test_family_matrix "plain" 8);
          Alcotest.test_case "ab k=4" `Quick (test_family_matrix "ab" 4);
          Alcotest.test_case "ab k=8" `Quick (test_family_matrix "ab" 8);
          Alcotest.test_case "two-layer k=4" `Quick (test_family_matrix "two-layer" 4);
          Alcotest.test_case "two-layer k=8" `Quick (test_family_matrix "two-layer" 8);
          Alcotest.test_case "ab survives agg-core cut" `Quick test_ab_failure_reconverges;
          Alcotest.test_case "two-layer survives spine loss" `Quick
            test_two_layer_spine_loss ] ) ]
