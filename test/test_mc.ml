(* Model-checker suite: controlled-scheduler correctness, exploration
   accounting, token round-trips, corruption -> shrink -> replay. Runs on
   k=2 fabrics, where one schedule is a sub-millisecond simulation. *)

open Eventsim

let tiny =
  { Mc.default_params with Mc.depth = 2; delay_budget = 4 }

(* ---------------- one controlled run ---------------- *)

let test_zero_schedule_is_baseline () =
  let r = Mc.run_schedule tiny [||] in
  Testutil.check_bool "converged" true r.Mc.run_converged;
  Testutil.check_bool "no violations" true (r.Mc.run_violations = []);
  Testutil.check_int "decision slots consumed" tiny.Mc.depth
    (List.length r.Mc.run_decisions);
  Testutil.check_bool "window recorded" true (List.length r.Mc.run_window >= tiny.Mc.depth);
  (* with no extra delays, decisions fire at their natural times in
     schedule order *)
  List.iteri
    (fun i (tag, due) ->
      let tag', t = List.nth r.Mc.run_window i in
      Testutil.check_string "window head is the undelayed decision" tag tag';
      Testutil.check_int "fired at natural time" due t)
    r.Mc.run_decisions

let test_delays_reorder_deliveries () =
  let p = { tiny with Mc.depth = 6; delay_budget = 10 } in
  let base = Mc.run_schedule p [||] in
  let perturbed = Mc.run_schedule p [| 0; 2; 1; 0; 3; 0 |] in
  Testutil.check_bool "same actions got decisions" true
    (List.map fst base.Mc.run_decisions = List.map fst perturbed.Mc.run_decisions);
  Testutil.check_bool "realized order differs" true
    (List.map fst base.Mc.run_window <> List.map fst perturbed.Mc.run_window);
  Testutil.check_bool "perturbed run still converges clean" true
    (perturbed.Mc.run_converged && perturbed.Mc.run_violations = [])

let test_run_is_deterministic () =
  let sched = [| 1; 2 |] in
  let a = Format.asprintf "%a" Mc.pp_run (Mc.run_schedule tiny sched) in
  let b = Format.asprintf "%a" Mc.pp_run (Mc.run_schedule tiny sched) in
  Testutil.check_string "byte-identical renderings" a b

let test_scenarios_hold_invariants () =
  List.iter
    (fun scenario ->
      let p = { tiny with Mc.scenario; depth = 1; delay_budget = 2 } in
      let r = Mc.run_schedule p [| 2 |] in
      if r.Mc.run_violations <> [] then
        Alcotest.failf "scenario %s violated: %s"
          (Mc.scenario_to_string scenario)
          (String.concat "; " r.Mc.run_violations))
    [ Mc.Boot; Mc.Fault; Mc.Reboot ]

let test_run_digest_deterministic () =
  let a = Mc.run_schedule tiny [||] and b = Mc.run_schedule tiny [||] in
  Testutil.check_string "same schedule, same verdict digest" a.Mc.run_digest b.Mc.run_digest;
  Testutil.check_int "digest is 16 hex chars" 16 (String.length a.Mc.run_digest);
  (* the digest keys the verdict cache, so it must be sensitive to the
     dataplane verdict itself *)
  let c = Mc.run_schedule { tiny with Mc.corrupt = Some Mc.Wrong_port } [||] in
  Testutil.check_bool "corruption changes the verdict digest" true
    (c.Mc.run_digest <> a.Mc.run_digest)

let test_check_invariants_clean_fabric () =
  let fab = Testutil.converged_fabric ~k:4 () in
  Testutil.check_bool "invariant pack holds on a converged k=4 fabric" true
    (Mc.check_invariants fab = [])

(* ---------------- exploration ---------------- *)

let test_explore_counts () =
  let rep = Mc.explore tiny in
  Testutil.check_bool "ok" true (Mc.report_ok rep);
  Testutil.check_int "all decision slots offered" tiny.Mc.depth rep.Mc.rep_decisions_seen;
  Testutil.check_int "no violations" 0 rep.Mc.rep_violating;
  Testutil.check_bool "explored beyond the baseline" true (rep.Mc.rep_schedules_run > 1);
  Testutil.check_bool "distinct <= runs" true
    (rep.Mc.rep_interleavings <= rep.Mc.rep_schedules_run);
  Testutil.check_bool "found several distinct interleavings" true
    (rep.Mc.rep_interleavings >= 4)

let test_verdict_cache_accounting () =
  let rep = Mc.explore tiny in
  (* every converged schedule either hit the verdict cache or paid one
     incremental-vs-full differential check on the miss *)
  Testutil.check_int "hits + equiv checks = schedules run" rep.Mc.rep_schedules_run
    (rep.Mc.rep_digest_hits + rep.Mc.rep_equiv_checks);
  Testutil.check_bool "verdict work was shared across interleavings" true
    (rep.Mc.rep_digest_hits > 0);
  Testutil.check_bool "at least one differential check ran" true (rep.Mc.rep_equiv_checks > 0);
  Testutil.check_bool "no divergence reported" true (Mc.report_ok rep)

let test_explore_deterministic () =
  let a = Obs.Json.to_string (Mc.report_to_json (Mc.explore tiny)) in
  let b = Obs.Json.to_string (Mc.report_to_json (Mc.explore tiny)) in
  Testutil.check_string "reports byte-identical" a b

let test_noprune_superset () =
  let pruned = Mc.explore tiny in
  let full = Mc.explore { tiny with Mc.prune = false } in
  Testutil.check_int "no pruning reported when disabled" 0 full.Mc.rep_pruned;
  (* with a quantum far coarser than the boot burst's spacing, most delay
     steps land in empty space and must be reported as pruned *)
  let coarse = Mc.explore { tiny with Mc.quantum = Time.us 50 } in
  Testutil.check_bool "pruning reported when it happens" true (coarse.Mc.rep_pruned > 0);
  Testutil.check_bool "full product runs at least as many schedules" true
    (full.Mc.rep_schedules_run >= pruned.Mc.rep_schedules_run);
  Testutil.check_bool "full product realizes at least as many interleavings" true
    (full.Mc.rep_interleavings >= pruned.Mc.rep_interleavings);
  Testutil.check_bool "both clean" true (Mc.report_ok pruned && Mc.report_ok full)

(* ---------------- corruption -> shrink -> replay ---------------- *)

let test_corruption_caught_and_shrunk () =
  List.iter
    (fun corrupt ->
      let p = { tiny with Mc.corrupt = Some corrupt } in
      let rep = Mc.explore p in
      Testutil.check_bool "reported as failing" false (Mc.report_ok rep);
      Testutil.check_int "every schedule violates" rep.Mc.rep_schedules_run
        rep.Mc.rep_violating;
      match rep.Mc.rep_counterexample with
      | None -> Alcotest.fail "corruption produced no counterexample"
      | Some cx ->
        Testutil.check_bool "violations survive the shrunk schedule" true
          (cx.Mc.cx_violations <> []);
        (* state corruption is schedule-independent, so ddmin must reach
           the all-zero schedule *)
        Testutil.check_bool "shrunk to the minimal (all-zero) schedule" true
          (Array.for_all (fun s -> s = 0) cx.Mc.cx_schedule);
        (* the token replays the violation byte-for-byte *)
        (match Mc.parse_token cx.Mc.cx_token with
         | Error e -> Alcotest.failf "counterexample token does not parse: %s" e
         | Ok (p', sched') ->
           let a = Format.asprintf "%a" Mc.pp_run (Mc.run_schedule p' sched') in
           let b = Format.asprintf "%a" Mc.pp_run (Mc.run_schedule p' sched') in
           Testutil.check_string "replay byte-identical" a b;
           let r = Mc.run_schedule p' sched' in
           Testutil.check_bool "replayed violations match" true
             (r.Mc.run_violations = cx.Mc.cx_violations)))
    [ Mc.Wrong_binding; Mc.Wrong_port ]

(* ---------------- tokens ---------------- *)

let prop_token_roundtrip =
  Testutil.prop "Token.to_string/of_string round-trips" ~count:100
    QCheck2.Gen.(
      let* k = map (fun i -> 2 * i) (int_range 1 4) in
      let* depth = int_range 0 8 in
      let* sched = array_size (int_bound depth) (int_bound 5) in
      let* seed = int_bound 10_000 in
      let* scenario = oneofl [ Mc.Boot; Mc.Fault; Mc.Reboot ] in
      let* corrupt = oneofl [ None; Some Mc.Wrong_binding; Some Mc.Wrong_port ] in
      let* quantum_us = int_range 1 100 in
      let* topo = oneofl [ "plain"; "ab"; "two-layer" ] in
      return
        ( { Mc.default_params with
            Mc.k;
            seed;
            topo;
            scenario;
            depth;
            corrupt;
            quantum = Time.us quantum_us },
          sched ))
    (fun (p, sched) ->
      let s = Mc.Token.to_string p sched in
      (* the version tag is decided by the topology: plain stays mc1 *)
      String.length s > 4
      && String.sub s 0 3 = Mc.Token.(version_to_string (version_of p))
      &&
      match Mc.Token.of_string s with
      | Ok (p', sched') -> p' = p && sched' = sched
      | Error _ -> false)

let test_token_rejects_malformed () =
  let bad =
    [ "";
      "mc2:k=2";
      "mc1:k=2";
      "mc1:k=3:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=-";
      "mc1:k=2:seed=1:scn=warp:depth=2:step=3:budget=8:q=2000:corrupt=none:d=-";
      "mc1:k=2:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=1.2.3";
      "mc1:k=2:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=1.x";
      "mc1:k=2:seed=x:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=-";
      "mc1:k=2:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=evil:d=-";
      "mc2:k=2:topo=butterfly:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=-";
      "mc2:k=2:seed=1:scn=boot:depth=2:step=3:budget=8:q=2000:corrupt=none:d=-" ]
  in
  List.iter
    (fun t ->
      if not (Result.is_error (Mc.parse_token t)) then
        Alcotest.failf "token %S should be rejected" t)
    bad

let () =
  Alcotest.run "mc"
    [ ( "controlled runs",
        [ Alcotest.test_case "zero schedule is the baseline" `Quick
            test_zero_schedule_is_baseline;
          Alcotest.test_case "delays genuinely reorder deliveries" `Quick
            test_delays_reorder_deliveries;
          Alcotest.test_case "runs render deterministically" `Quick test_run_is_deterministic;
          Alcotest.test_case "verdict digests are stable and sensitive" `Quick
            test_run_digest_deterministic;
          Alcotest.test_case "boot/fault/reboot scenarios hold the pack" `Quick
            test_scenarios_hold_invariants;
          Alcotest.test_case "invariant pack alone on a clean k=4 fabric" `Quick
            test_check_invariants_clean_fabric ] );
      ( "exploration",
        [ Alcotest.test_case "honest counts, no violations" `Quick test_explore_counts;
          Alcotest.test_case "verdict cache accounting" `Quick test_verdict_cache_accounting;
          Alcotest.test_case "exploration is deterministic" `Quick test_explore_deterministic;
          Alcotest.test_case "pruning is a pure subset, and reported" `Quick
            test_noprune_superset ] );
      ( "counterexamples",
        [ Alcotest.test_case "corruptions caught, shrunk, replayed" `Quick
            test_corruption_caught_and_shrunk ] );
      ( "tokens",
        [ prop_token_roundtrip;
          Alcotest.test_case "malformed tokens rejected" `Quick test_token_rejects_malformed ] ) ]
