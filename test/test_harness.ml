(* Harness tests: rendering, the experiment index, and quick runs of the
   cheaper experiments to guarantee the reproduction pipeline stays
   green. (The expensive sweeps run from bin/experiments.) *)

let render_to_string f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_table () =
  let out =
    render_to_string (fun fmt ->
        Harness.Render.table fmt ~header:[ "col1"; "column2" ]
          ~rows:[ [ "a"; "b" ]; [ "ccc"; "d" ] ])
  in
  Testutil.check_bool "has header" true (contains ~needle:"col1" out);
  Testutil.check_bool "has rule" true (contains ~needle:"---" out);
  Testutil.check_bool "has cells" true (contains ~needle:"ccc" out)

let test_render_series () =
  let out =
    render_to_string (fun fmt ->
        Harness.Render.series fmt ~title:"t" ~x_label:"x" ~y_label:"y" [ (1.0, 2.0); (3.0, 4.5) ])
  in
  Testutil.check_bool "x label" true (contains ~needle:"x" out);
  Testutil.check_bool "value" true (contains ~needle:"4.5" out)

let test_render_helpers () =
  Testutil.check_string "ms" "12.5" (Harness.Render.ms (Eventsim.Time.us 12500));
  Testutil.check_string "f1" "3.1" (Harness.Render.f1 3.14159);
  Testutil.check_string "f2" "3.14" (Harness.Render.f2 3.14159)

let test_experiment_index () =
  Testutil.check_int "eleven experiments" 11 (List.length Harness.Experiments.all);
  Testutil.check_bool "unknown id rejected" false
    (Harness.Experiments.run_one Format.str_formatter "nope");
  List.iter
    (fun (id, descr) ->
      Testutil.check_bool "id nonempty" true (String.length id > 0);
      Testutil.check_bool "descr nonempty" true (String.length descr > 0))
    Harness.Experiments.all

let test_udp_convergence_trial () =
  match Harness.Exp_udp_convergence.single_trial ~k:4 ~failures:1 ~seed:3 with
  | Some ms -> Testutil.check_bool "convergence in (1, 100) ms" true (ms > 1.0 && ms < 100.0)
  | None -> Alcotest.fail "no trial result"

let test_fm_cpu_measurement () =
  let ns = Harness.Exp_fm_cpu.measured_ns_per_arp ~bindings:1000 () in
  Testutil.check_bool "positive lookup cost" true (ns > 0.0);
  Testutil.check_bool "lookup under 100us" true (ns < 100_000.0);
  let r = Harness.Exp_fm_cpu.run ~quick:true () in
  Testutil.check_bool "projections monotone" true
    (let cores = List.map snd r.Harness.Exp_fm_cpu.projections in
     List.sort compare cores = cores)

let test_fm_load_model () =
  let r = Harness.Exp_fm_load.run ~quick:true () in
  List.iter
    (fun m ->
      let open Harness.Exp_fm_load in
      Testutil.check_bool "1% < 10% < 100%" true
        (m.arps_per_sec_1pct < m.arps_per_sec_10pct
         && m.arps_per_sec_10pct < m.arps_per_sec_100pct);
      Testutil.check_float_eps "model arithmetic" ~eps:1e-6
        (float_of_int (m.hosts * r.flows_per_host_per_sec))
        m.arps_per_sec_100pct)
    r.Harness.Exp_fm_load.model;
  (match r.Harness.Exp_fm_load.measured with
   | m :: _ ->
     Testutil.check_bool "boot control traffic happened" true
       (m.Harness.Exp_fm_load.boot_msgs_to_fm > 0)
   | [] -> Alcotest.fail "no measured rows")

let test_tcp_convergence_quick () =
  let r = Harness.Exp_tcp_convergence.run ~quick:true () in
  (* the paper's claim: stall is RTO-bound, not fabric-bound *)
  Testutil.check_bool "stall >= rto_min" true
    (r.Harness.Exp_tcp_convergence.stall_ms >= r.Harness.Exp_tcp_convergence.rto_min_ms *. 0.9);
  Testutil.check_bool "stall under 3 RTOs" true
    (r.Harness.Exp_tcp_convergence.stall_ms < 3.0 *. r.Harness.Exp_tcp_convergence.rto_min_ms);
  Testutil.check_bool "flow recovered" true
    (r.Harness.Exp_tcp_convergence.goodput_after_mbps > 100.0)

let test_migration_quick () =
  let r = Harness.Exp_migration.run ~quick:true () in
  match r.Harness.Exp_migration.modes with
  | [ drop; fwd ] ->
    Testutil.check_bool "both modes ran" true
      ((not drop.Harness.Exp_migration.forward_stale) && fwd.Harness.Exp_migration.forward_stale);
    Testutil.check_bool "outage covers downtime" true
      (drop.Harness.Exp_migration.outage_ms >= r.Harness.Exp_migration.downtime_ms);
    Testutil.check_bool "forwarding shortens the outage" true
      (fwd.Harness.Exp_migration.outage_ms <= drop.Harness.Exp_migration.outage_ms);
    Testutil.check_bool "flow resumed (drop mode)" true
      (drop.Harness.Exp_migration.delivered_after_mb > 1.0)
  | _ -> Alcotest.fail "expected two modes"

let test_ablation_quick () =
  let r = Harness.Exp_ablation.run ~quick:true () in
  (* convergence must track the timeout roughly one-for-one *)
  List.iter
    (fun (timeout, conv) ->
      Testutil.check_bool "conv >= timeout" true (conv >= timeout);
      Testutil.check_bool "conv < timeout + 15ms" true (conv < timeout +. 15.0))
    r.Harness.Exp_ablation.timeout_sweep;
  Testutil.check_bool "salting widens path diversity" true
    (r.Harness.Exp_ablation.cores_with_salt > r.Harness.Exp_ablation.cores_without_salt)

let test_multicast_quick () =
  let r = Harness.Exp_multicast.run ~quick:true () in
  Testutil.check_bool "initial core chosen" true (r.Harness.Exp_multicast.initial_core <> None);
  Testutil.check_bool "core moved after failure" true
    (r.Harness.Exp_multicast.core_after_first <> r.Harness.Exp_multicast.initial_core);
  (* the receiver in the failed pod saw an outage comparable to the
     detection timeout; others kept receiving *)
  let pod1_outages =
    List.filter (fun o -> o.Harness.Exp_multicast.receiver = "pod1")
      r.Harness.Exp_multicast.outages
  in
  Testutil.check_bool "pod1 saw outages" true
    (List.for_all (fun o -> o.Harness.Exp_multicast.gap_ms > 20.0) pod1_outages)

let test_recovery_comparison_quick () =
  let r = Harness.Exp_recovery_comparison.run ~quick:true () in
  Testutil.check_int "three family rows" 3
    (List.length r.Harness.Exp_recovery_comparison.rows);
  List.iter
    (fun row ->
      let open Harness.Exp_recovery_comparison in
      Testutil.check_bool (row.family ^ " booted") true (row.boot_convergence_ms > 0.0);
      Testutil.check_bool (row.family ^ " saw chaos events") true (row.chaos_events > 0);
      Testutil.check_bool (row.family ^ " checked") true (row.checks > 0);
      Testutil.check_bool (row.family ^ " verifier-clean") true
        (row.verifier_clean_fraction = 1.0))
    r.Harness.Exp_recovery_comparison.rows

let () =
  Alcotest.run "harness"
    [ ( "render",
        [ Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "series" `Quick test_render_series;
          Alcotest.test_case "helpers" `Quick test_render_helpers ] );
      ("index", [ Alcotest.test_case "experiment index" `Quick test_experiment_index ]);
      ( "experiments (quick)",
        [ Alcotest.test_case "udp convergence trial" `Quick test_udp_convergence_trial;
          Alcotest.test_case "fm cpu measurement" `Quick test_fm_cpu_measurement;
          Alcotest.test_case "fm load model" `Quick test_fm_load_model;
          Alcotest.test_case "tcp convergence" `Quick test_tcp_convergence_quick;
          Alcotest.test_case "migration (both modes)" `Quick test_migration_quick;
          Alcotest.test_case "multicast" `Quick test_multicast_quick;
          Alcotest.test_case "ablations" `Quick test_ablation_quick;
          Alcotest.test_case "recovery comparison" `Quick test_recovery_comparison_quick ] ) ]
