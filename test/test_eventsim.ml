open Eventsim

(* ---------------- Heap ---------------- *)

let test_heap_basic () =
  let h = Heap.create ~leq:( <= ) () in
  Testutil.check_bool "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Testutil.check_int "length" 3 (Heap.length h);
  Testutil.check_int "peek" 1 (match Heap.peek h with Some v -> v | None -> -1);
  Testutil.check_int "pop1" 1 (Heap.pop_exn h);
  Testutil.check_int "pop2" 3 (Heap.pop_exn h);
  Testutil.check_int "pop3" 5 (Heap.pop_exn h);
  Testutil.check_bool "empty again" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h = Heap.create ~leq:( <= ) () in
  Testutil.check_bool "pop empty" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear_iter () =
  let h = Heap.create ~leq:( <= ) () in
  List.iter (Heap.push h) [ 4; 2; 9 ];
  let seen = ref 0 in
  Heap.iter h (fun _ -> incr seen);
  Testutil.check_int "iter count" 3 !seen;
  Heap.clear h;
  Testutil.check_int "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  Testutil.prop "heap pops in sorted order"
    QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let h = Heap.create ~leq:( <= ) () in
      List.iter (Heap.push h) xs;
      let out = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some v ->
          out := v :: !out;
          drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = List.sort compare xs)

(* ---------------- Engine ---------------- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:20 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Testutil.check_int "clock at last event" 30 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:10 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5 (fun () -> fired := true) in
  Testutil.check_bool "pending" true (Engine.is_pending h);
  Engine.cancel e h;
  Testutil.check_bool "not pending" false (Engine.is_pending h);
  Engine.run e;
  Testutil.check_bool "never fired" false !fired

(* pending_count is exact: cancelled events leave the count the moment
   they are cancelled, not when the heap eventually pops them *)
let test_engine_pending_count_exact () =
  let e = Engine.create () in
  let hs = Array.init 5 (fun _ -> Engine.schedule e ~delay:5 (fun () -> ())) in
  Testutil.check_int "all live" 5 (Engine.pending_count e);
  Engine.cancel e hs.(0);
  Engine.cancel e hs.(3);
  Testutil.check_int "cancelled leave immediately" 3 (Engine.pending_count e);
  Engine.cancel e hs.(0);
  Testutil.check_int "double cancel is a no-op" 3 (Engine.pending_count e);
  Engine.run e;
  Testutil.check_int "drained" 0 (Engine.pending_count e);
  Testutil.check_bool "fired events are not pending" false (Engine.is_pending hs.(1));
  Engine.cancel e hs.(1);
  Testutil.check_int "cancelling a fired event is a no-op" 0 (Engine.pending_count e);
  (* a large cancelled backlog never shows up, even before any run *)
  let hs = Array.init 100 (fun _ -> Engine.schedule e ~delay:5 (fun () -> ())) in
  Array.iter (fun h -> Engine.cancel e h) hs;
  Testutil.check_int "fully cancelled backlog counts zero" 0 (Engine.pending_count e)

(* same-instant FIFO order must survive interleaved cancellations: the
   survivors fire in their original scheduling order *)
let test_engine_fifo_with_cancels () =
  let e = Engine.create () in
  let log = ref [] in
  let hs =
    Array.init 8 (fun i -> Engine.schedule e ~delay:10 (fun () -> log := i :: !log))
  in
  Engine.cancel e hs.(1);
  Engine.cancel e hs.(4);
  Engine.cancel e hs.(7);
  (* late arrivals at the same instant still run after the survivors *)
  for i = 8 to 9 do
    ignore (Engine.schedule e ~delay:10 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo with holes" [ 0; 2; 3; 5; 6; 8; 9 ] (List.rev !log)

(* Handle-generation safety: a handle for an event that already fired
   must stay inert forever. In an engine that recycled slot indices, a
   late cancel through a stale handle could alias — and kill — an
   unrelated event scheduled into the reused slot; here handles are the
   event records themselves, so the cancel must be a pure no-op. The
   property interleaves rounds of scheduling with cancels of every
   previously-fired handle, issued *after* fresh events are queued (when
   a slot-reusing engine would have re-allocated the freed slots). *)
let prop_cancel_fired_handle_generation_safe =
  Testutil.prop "cancel on fired handles never hits later events" ~count:100
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 5))
    (fun (seed, rounds) ->
      let p = Prng.create seed in
      let e = Engine.create () in
      let fired = ref 0 and scheduled = ref 0 in
      let stale = ref [] in
      let ok = ref true in
      for _ = 1 to rounds do
        let n = 1 + Prng.int p 8 in
        let fresh =
          List.init n (fun _ ->
              incr scheduled;
              Engine.schedule e ~delay:(Prng.int p 50) (fun () -> incr fired))
        in
        List.iter
          (fun h ->
            Engine.cancel e h;
            if Engine.is_pending h then ok := false)
          !stale;
        Engine.run e;
        List.iter (fun h -> if Engine.is_pending h then ok := false) fresh;
        stale := fresh @ !stale
      done;
      !ok && !fired = !scheduled)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:10 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:100 (fun () -> incr fired));
  Engine.run ~until:50 e;
  Testutil.check_int "only first fired" 1 !fired;
  Testutil.check_int "clock clamped" 50 (Engine.now e);
  Engine.run e;
  Testutil.check_int "rest fired" 2 !fired

let test_engine_max_events () =
  let e = Engine.create () in
  let fired = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule e ~delay:1 (fun () -> incr fired))
  done;
  Engine.run ~max_events:4 e;
  Testutil.check_int "bounded" 4 !fired;
  Testutil.check_int "processed counter" 4 (Engine.events_processed e)

let test_engine_validation () =
  let e = Engine.create ~now:100 () in
  Alcotest.check_raises "past" (Invalid_argument
                                  "Engine.schedule_at: time 50 is in the past (now 100)")
    (fun () -> ignore (Engine.schedule_at e ~time:50 (fun () -> ())));
  (try
     ignore (Engine.schedule e ~delay:(-1) (fun () -> ()));
     Alcotest.fail "negative delay accepted"
   with Invalid_argument _ -> ())

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:10 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Testutil.check_int "final clock" 15 (Engine.now e)

let test_engine_step () =
  let e = Engine.create () in
  Testutil.check_bool "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~delay:1 (fun () -> ()));
  Testutil.check_bool "one step" true (Engine.step e);
  Testutil.check_bool "drained" false (Engine.step e)

(* ---------------- Timer ---------------- *)

let test_timer_every () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.every e ~period:10 (fun () -> incr fired) in
  Engine.run ~until:55 e;
  Testutil.check_int "five firings" 5 !fired;
  Timer.stop t;
  Engine.run ~until:200 e;
  Testutil.check_int "stopped" 5 !fired

let test_timer_stop_from_callback () =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec t = lazy (Timer.every e ~period:10 (fun () ->
      incr fired;
      if !fired = 3 then Timer.stop (Lazy.force t)))
  in
  ignore (Lazy.force t);
  Engine.run ~until:1000 e;
  Testutil.check_int "self-stop" 3 !fired

let test_timer_start_delay () =
  let e = Engine.create () in
  let first = ref (-1) in
  let t = Timer.every e ~period:10 ~start_delay:3 (fun () ->
      if !first < 0 then first := Engine.now e)
  in
  Engine.run ~until:30 e;
  Testutil.check_int "first at start_delay" 3 !first;
  Timer.stop t

let test_timer_after () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.after e ~delay:7 (fun () -> incr fired) in
  Testutil.check_bool "active" true (Timer.active t);
  Engine.run e;
  Testutil.check_int "once" 1 !fired;
  Testutil.check_bool "inactive after fire" false (Timer.active t)

let test_timer_after_stopped () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.after e ~delay:7 (fun () -> incr fired) in
  Timer.stop t;
  Engine.run e;
  Testutil.check_int "never" 0 !fired

let test_timer_invalid () =
  let e = Engine.create () in
  Alcotest.check_raises "period 0" (Invalid_argument "Timer.every: period must be positive")
    (fun () -> ignore (Timer.every e ~period:0 (fun () -> ())))

(* ---------------- Time ---------------- *)

let test_time_units () =
  Testutil.check_int "us" 1_000 (Time.us 1);
  Testutil.check_int "ms" 1_000_000 (Time.ms 1);
  Testutil.check_int "sec" 1_000_000_000 (Time.sec 1);
  Testutil.check_int "of_sec_f" 1_500_000_000 (Time.of_sec_f 1.5);
  Testutil.check_float_eps "to_ms_f" ~eps:1e-9 1.5 (Time.to_ms_f 1_500_000);
  Testutil.check_float_eps "to_sec_f" ~eps:1e-9 0.25 (Time.to_sec_f 250_000_000)

let test_time_pp () =
  Testutil.check_string "ns" "500ns" (Time.to_string 500);
  Testutil.check_string "us" "2us" (Time.to_string 2_000);
  Testutil.check_string "ms" "3ms" (Time.to_string 3_000_000);
  Testutil.check_string "s" "4s" (Time.to_string 4_000_000_000)

(* ---------------- Prng ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  Testutil.check_bool "distinct streams" true (xa <> xb)

let test_prng_bounds_invalid () =
  let p = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let prop_prng_int_bound =
  Testutil.prop "Prng.int in [0, bound)"
    QCheck2.Gen.(pair int (int_range 1 10_000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prop_prng_int_in =
  Testutil.prop "Prng.int_in inclusive range"
    QCheck2.Gen.(triple int (int_range (-100) 100) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let p = Prng.create seed in
      let v = Prng.int_in p lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_prng_shuffle_permutes =
  Testutil.prop "shuffle preserves multiset"
    QCheck2.Gen.(pair int (list_size (int_bound 50) int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let test_prng_pick_sample () =
  let p = Prng.create 3 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    let v = Prng.pick p arr in
    Testutil.check_bool "pick member" true (Array.exists (fun x -> x = v) arr)
  done;
  let sampled = Prng.sample_without_replacement p 2 [ 1; 2; 3; 4 ] in
  Testutil.check_int "sample size" 2 (List.length sampled);
  Testutil.check_bool "distinct" true (List.sort_uniq compare sampled = List.sort compare sampled)

let test_prng_float_exponential () =
  let p = Prng.create 9 in
  for _ = 1 to 100 do
    let f = Prng.float p 2.0 in
    Testutil.check_bool "float range" true (f >= 0.0 && f < 2.0);
    Testutil.check_bool "exp positive" true (Prng.exponential p ~mean:1.0 >= 0.0)
  done

(* ---------------- Stats ---------------- *)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Testutil.check_int "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Testutil.check_int "reset" 0 (Stats.Counter.value c)

let test_distribution () =
  let d = Stats.Distribution.create () in
  List.iter (Stats.Distribution.add d) [ 1.0; 2.0; 3.0; 4.0 ];
  Testutil.check_int "count" 4 (Stats.Distribution.count d);
  Testutil.check_float_eps "mean" ~eps:1e-9 2.5 (Stats.Distribution.mean d);
  Testutil.check_float_eps "min" ~eps:1e-9 1.0 (Stats.Distribution.min d);
  Testutil.check_float_eps "max" ~eps:1e-9 4.0 (Stats.Distribution.max d);
  Testutil.check_float_eps "p50" ~eps:1e-9 2.0 (Stats.Distribution.percentile d 50.0);
  Testutil.check_float_eps "p100" ~eps:1e-9 4.0 (Stats.Distribution.percentile d 100.0);
  Testutil.check_float_eps "stddev" ~eps:1e-6 1.118034 (Stats.Distribution.stddev d)

let test_distribution_empty () =
  let d = Stats.Distribution.create () in
  Testutil.check_float_eps "mean 0" ~eps:1e-9 0.0 (Stats.Distribution.mean d);
  Testutil.check_float_eps "p99 0" ~eps:1e-9 0.0 (Stats.Distribution.percentile d 99.0)

let test_distribution_percentile_edges () =
  (* single sample: every percentile is that sample *)
  let d = Stats.Distribution.create () in
  Stats.Distribution.add d 7.5;
  Testutil.check_float_eps "single p0" ~eps:1e-9 7.5 (Stats.Distribution.percentile d 0.0);
  Testutil.check_float_eps "single p50" ~eps:1e-9 7.5 (Stats.Distribution.percentile d 50.0);
  Testutil.check_float_eps "single p100" ~eps:1e-9 7.5 (Stats.Distribution.percentile d 100.0);
  (* unsorted insertion: p0 is the min, p100 the max *)
  let d = Stats.Distribution.create () in
  List.iter (Stats.Distribution.add d) [ 5.0; 1.0; 3.0 ];
  Testutil.check_float_eps "p0 is min" ~eps:1e-9 1.0 (Stats.Distribution.percentile d 0.0);
  Testutil.check_float_eps "p100 is max" ~eps:1e-9 5.0 (Stats.Distribution.percentile d 100.0);
  Testutil.check_float_eps "p50 mid" ~eps:1e-9 3.0 (Stats.Distribution.percentile d 50.0);
  (* empty: everything is 0, including the endpoints *)
  let d = Stats.Distribution.create () in
  Testutil.check_float_eps "empty p0" ~eps:1e-9 0.0 (Stats.Distribution.percentile d 0.0);
  Testutil.check_float_eps "empty p100" ~eps:1e-9 0.0 (Stats.Distribution.percentile d 100.0)

let test_series () =
  let s = Stats.Series.create ~name:"s" () in
  Stats.Series.add s ~time:10 1.0;
  Stats.Series.add s ~time:20 2.0;
  Testutil.check_int "length" 2 (Stats.Series.length s);
  Testutil.check_string "name" "s" (Stats.Series.name s);
  (match Stats.Series.last s with
   | Some (t, v) ->
     Testutil.check_int "last time" 20 t;
     Testutil.check_float_eps "last val" ~eps:1e-9 2.0 v
   | None -> Alcotest.fail "no last");
  Testutil.check_int "points" 2 (Array.length (Stats.Series.points s))

let test_series_rate () =
  let s = Stats.Series.create () in
  (* 4 events of value 1 in the first second, 2 in the second *)
  List.iter (fun t -> Stats.Series.add s ~time:t 1.0)
    [ 0; 100_000_000; 200_000_000; 300_000_000; 1_100_000_000; 1_200_000_000 ];
  match Stats.Series.rate_per_sec s ~bucket:(Time.sec 1) with
  | [ (0, r1); (1_000_000_000, r2) ] ->
    Testutil.check_float_eps "rate1" ~eps:1e-9 4.0 r1;
    Testutil.check_float_eps "rate2" ~eps:1e-9 2.0 r2
  | other -> Alcotest.failf "unexpected buckets (%d)" (List.length other)

(* ---------------- Trace ---------------- *)

let test_trace_basic () =
  let t = Trace.create ~capacity:10 ~min_level:Trace.Debug () in
  Trace.record t ~time:1 Trace.Info ~subsystem:"x" "one";
  Trace.recordf t ~time:2 Trace.Warn ~subsystem:"y" "two %d" 2;
  Testutil.check_int "count" 2 (Trace.count t);
  (match Trace.entries t with
   | [ e1; e2 ] ->
     Testutil.check_string "msg1" "one" e1.Trace.message;
     Testutil.check_string "msg2" "two 2" e2.Trace.message
   | _ -> Alcotest.fail "entries");
  Trace.clear t;
  Testutil.check_int "cleared" 0 (Trace.count t)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 ~min_level:Trace.Debug () in
  for i = 1 to 5 do
    Trace.record t ~time:i Trace.Info ~subsystem:"r" (string_of_int i)
  done;
  match Trace.entries t with
  | [ a; b; c ] ->
    Testutil.check_string "oldest kept" "3" a.Trace.message;
    Testutil.check_string "mid" "4" b.Trace.message;
    Testutil.check_string "newest" "5" c.Trace.message
  | l -> Alcotest.failf "ring size %d" (List.length l)

let test_trace_level_filter () =
  let t = Trace.create ~min_level:Trace.Warn () in
  Trace.record t ~time:1 Trace.Debug ~subsystem:"f" "nope";
  Trace.record t ~time:1 Trace.Info ~subsystem:"f" "nope";
  Trace.record t ~time:1 Trace.Error ~subsystem:"f" "yes";
  Testutil.check_int "filtered" 1 (Trace.count t)

let test_trace_null () =
  let t = Trace.null in
  Trace.record t ~time:1 Trace.Error ~subsystem:"n" "dropped";
  Testutil.check_int "record dropped" 0 (Trace.count t);
  (* the null sink is contractually immutable: level changes are no-ops *)
  Trace.set_min_level t Trace.Debug;
  Trace.record t ~time:2 Trace.Debug ~subsystem:"n" "still dropped";
  Testutil.check_int "still empty" 0 (Trace.count t);
  Testutil.check_int "no entries" 0 (List.length (Trace.entries t));
  Trace.clear t;
  Testutil.check_int "clear is a no-op" 0 (Trace.count t)

let () =
  Alcotest.run "eventsim"
    [ ( "heap",
        [ Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "clear & iter" `Quick test_heap_clear_iter;
          prop_heap_sorts ] );
      ( "engine",
        [ Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "FIFO at same instant" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "pending count exact" `Quick test_engine_pending_count_exact;
          Alcotest.test_case "FIFO with cancellations" `Quick test_engine_fifo_with_cancels;
          prop_cancel_fired_handle_generation_safe;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "step" `Quick test_engine_step ] );
      ( "timer",
        [ Alcotest.test_case "recurring" `Quick test_timer_every;
          Alcotest.test_case "stop from callback" `Quick test_timer_stop_from_callback;
          Alcotest.test_case "start delay" `Quick test_timer_start_delay;
          Alcotest.test_case "one-shot" `Quick test_timer_after;
          Alcotest.test_case "one-shot stopped" `Quick test_timer_after_stopped;
          Alcotest.test_case "invalid period" `Quick test_timer_invalid ] );
      ( "time",
        [ Alcotest.test_case "unit conversions" `Quick test_time_units;
          Alcotest.test_case "pretty printing" `Quick test_time_pp ] );
      ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "invalid bound" `Quick test_prng_bounds_invalid;
          Alcotest.test_case "pick & sample" `Quick test_prng_pick_sample;
          Alcotest.test_case "float & exponential" `Quick test_prng_float_exponential;
          prop_prng_int_bound;
          prop_prng_int_in;
          prop_prng_shuffle_permutes ] );
      ( "stats",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "distribution" `Quick test_distribution;
          Alcotest.test_case "empty distribution" `Quick test_distribution_empty;
          Alcotest.test_case "percentile edge cases" `Quick test_distribution_percentile_edges;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "series rate buckets" `Quick test_series_rate ] );
      ( "trace",
        [ Alcotest.test_case "record & entries" `Quick test_trace_basic;
          Alcotest.test_case "ring buffer wraps" `Quick test_trace_ring;
          Alcotest.test_case "level filter" `Quick test_trace_level_filter;
          Alcotest.test_case "null sink contract" `Quick test_trace_null ] ) ]
