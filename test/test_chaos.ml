(* Tests of the chaos campaign engine and the switch cold-reboot recovery
   path it depends on: seeded plans are deterministic and routable-safe,
   a full mixed campaign leaves zero verifier violations at every
   quiescent point, crash/reboot cycles reconverge with PMAC bindings
   intact, and the JSON report is byte-stable for a given seed. *)

open Portland
open Eventsim
module MR = Topology.Multirooted

let plan_string plan = String.concat "\n" (List.map (Format.asprintf "%a" Chaos.pp_event) plan)

(* ---------------- plan generation ---------------- *)

let test_profiles () =
  List.iter
    (fun (s, p) ->
      Testutil.check_bool ("parse " ^ s) true (Chaos.profile_of_string s = Some p);
      Testutil.check_string "roundtrip" s (Chaos.profile_to_string p))
    [ ("mixed", Chaos.Mixed);
      ("link-flaps", Chaos.Link_flaps);
      ("switch-churn", Chaos.Switch_churn);
      ("loss-ramps", Chaos.Loss_ramps) ];
  Testutil.check_bool "unknown" true (Chaos.profile_of_string "anarchy" = None)

let test_generate_deterministic () =
  let mt = Topology.Fattree.build ~k:4 in
  let gen () = Chaos.generate ~seed:42 ~duration:(Time.ms 6000) mt in
  Testutil.check_string "same seed, same plan" (plan_string (gen ())) (plan_string (gen ()));
  let other = Chaos.generate ~seed:43 ~duration:(Time.ms 6000) mt in
  Testutil.check_bool "different seed, different plan" false
    (plan_string (gen ()) = plan_string other)

let test_generate_mixed_quota () =
  let mt = Topology.Fattree.build ~k:4 in
  let plan = Chaos.generate ~seed:42 ~duration:(Time.ms 6000) mt in
  let count p = List.length (List.filter (fun e -> p e.Chaos.action) plan) in
  Testutil.check_bool "30+ events" true (List.length plan >= 30);
  Testutil.check_bool "sorted by time" true
    (List.for_all2
       (fun a b -> a.Chaos.at <= b.Chaos.at)
       (List.filteri (fun i _ -> i < List.length plan - 1) plan)
       (List.tl plan));
  Testutil.check_bool "two crashes" true
    (count (function Chaos.Crash_switch _ -> true | _ -> false) >= 2);
  Testutil.check_int "every crash reboots"
    (count (function Chaos.Crash_switch _ -> true | _ -> false))
    (count (function Chaos.Restart_switch _ -> true | _ -> false));
  Testutil.check_int "one fm restart" 1
    (count (function Chaos.Restart_fm -> true | _ -> false));
  Testutil.check_int "one fm shard failover" 1
    (count (function Chaos.Failover_fm_shard _ -> true | _ -> false));
  Testutil.check_bool "lossy links" true
    (count (function Chaos.Set_link_loss _ -> true | _ -> false) >= 2);
  Testutil.check_bool "link flaps" true
    (count (function Chaos.Fail_link _ -> true | _ -> false) >= 2);
  Testutil.check_int "every failure recovers"
    (count (function Chaos.Fail_link _ -> true | _ -> false))
    (count (function Chaos.Recover_link _ -> true | _ -> false))

(* Every plan must leave the fabric fully healed: net link failures and
   crashes are zero, and loss overrides end at rate 0. *)
let test_generate_self_contained () =
  let mt = Topology.Fattree.build ~k:4 in
  List.iter
    (fun profile ->
      let plan = Chaos.generate ~profile ~seed:9 ~duration:(Time.ms 4000) mt in
      let down = Hashtbl.create 16 in
      let crashed = Hashtbl.create 4 in
      let lossy = Hashtbl.create 4 in
      List.iter
        (fun e ->
          match e.Chaos.action with
          | Chaos.Fail_link { a; b } -> Hashtbl.replace down (a, b) ()
          | Chaos.Recover_link { a; b } -> Hashtbl.remove down (a, b)
          | Chaos.Crash_switch s -> Hashtbl.replace crashed s ()
          | Chaos.Restart_switch s -> Hashtbl.remove crashed s
          | Chaos.Restart_fm | Chaos.Failover_fm_shard _ -> ()
          | Chaos.Set_link_loss { a; b; rate } ->
            if rate > 0.0 then Hashtbl.replace lossy (a, b) () else Hashtbl.remove lossy (a, b))
        plan;
      let name = Chaos.profile_to_string profile in
      Testutil.check_int (name ^ ": no link left down") 0 (Hashtbl.length down);
      Testutil.check_int (name ^ ": no switch left crashed") 0 (Hashtbl.length crashed);
      Testutil.check_int (name ^ ": no loss left set") 0 (Hashtbl.length lossy))
    [ Chaos.Mixed; Chaos.Link_flaps; Chaos.Switch_churn; Chaos.Loss_ramps ]

(* ---------------- switch cold-reboot recovery ---------------- *)

let bindings_of fab =
  List.filter_map
    (fun h -> Fabric_manager.lookup_binding (Fabric.fabric_manager fab) (Host_agent.ip h))
    (Fabric.hosts fab)

let test_recover_agg_switch () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let before = bindings_of fab in
  let agg = mt.MR.aggs.(1).(0) in
  Fabric.fail_switch fab agg;
  Fabric.run_for fab (Time.ms 300);
  Testutil.assert_verified ~msg:"mid-crash" fab;
  Fabric.recover_switch fab agg;
  Testutil.check_bool "reconverged after reboot" true (Fabric.await_convergence fab);
  Fabric.run_for fab (Time.ms 200);
  Testutil.assert_verified ~msg:"after reboot" fab;
  Testutil.check_bool "PMAC bindings preserved" true (bindings_of fab = before);
  (* the rebooted switch is forwarding again: routed probe crossing pod 1 *)
  let src = Fabric.host fab ~pod:1 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:1 ~edge:1 ~slot:0 in
  let payload = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:1 ~app_seq:0 ~payload_len:64 ()) in
  (match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) payload with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "probe after reboot failed: %s" e)

let test_recover_edge_switch_restores_hosts () =
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let before = bindings_of fab in
  let edge = mt.MR.edges.(0).(0) in
  Fabric.fail_switch fab edge;
  Fabric.run_for fab (Time.ms 200);
  Fabric.recover_switch fab edge;
  Testutil.check_bool "reconverged after edge reboot" true (Fabric.await_convergence fab);
  Fabric.run_for fab (Time.ms 200);
  Testutil.assert_verified ~msg:"after edge reboot" fab;
  (* Host_restore replayed the bindings: same PMACs (and vmids), no
     re-learning needed before proxy ARP works again *)
  Testutil.check_bool "host bindings identical" true (bindings_of fab = before);
  let src = Fabric.host fab ~pod:0 ~edge:0 ~slot:0 in
  let dst = Fabric.host fab ~pod:2 ~edge:0 ~slot:1 in
  let payload = Netcore.Ipv4_pkt.Udp (Netcore.Udp.make ~flow_id:2 ~app_seq:0 ~payload_len:64 ()) in
  (match Fabric.trace_route fab ~src ~dst_ip:(Host_agent.ip dst) payload with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "probe from rebooted edge failed: %s" e)

let test_recover_during_fm_restart () =
  (* the hardest ordering: switch crashes, FM restarts (losing its view),
     then the switch reboots and asks the *new* FM for its coordinates *)
  let fab = Testutil.converged_fabric () in
  let mt = Fabric.tree fab in
  let agg = mt.MR.aggs.(0).(1) in
  Fabric.fail_switch fab agg;
  Fabric.run_for fab (Time.ms 200);
  Fabric.restart_fabric_manager fab;
  Fabric.run_for fab (Time.ms 200);
  Fabric.recover_switch fab agg;
  Testutil.check_bool "reconverged" true (Fabric.await_convergence fab);
  Fabric.run_for fab (Time.ms 200);
  Testutil.assert_verified ~msg:"after fm restart + switch reboot" fab

(* ---------------- full campaigns ---------------- *)

let run_mixed seed =
  let fab = Testutil.converged_fabric () in
  let plan = Chaos.generate ~seed ~duration:(Time.ms 6000) (Fabric.tree fab) in
  Chaos.run_campaign ~label:"mixed" ~seed fab plan

let test_mixed_campaign_clean () =
  let r = run_mixed 42 in
  Testutil.check_bool "campaign ok" true (Chaos.report_ok r);
  Testutil.check_bool "several quiescent checks" true (List.length r.Chaos.rep_checks >= 5);
  List.iter
    (fun c ->
      Testutil.check_bool "converged at quiescent point" true c.Chaos.chk_converged;
      Testutil.check_int "no verifier violations" 0 (List.length c.Chaos.chk_violations);
      Testutil.check_int "all probes delivered" c.Chaos.chk_probes c.Chaos.chk_probes_ok)
    r.Chaos.rep_checks;
  Testutil.check_bool "every event applied" true
    (List.for_all (fun e -> e.Chaos.ev_applied) r.Chaos.rep_events);
  Testutil.check_bool "faults actually happened" true (r.Chaos.rep_faults_peak > 0);
  (* the final check runs after the last recovery: the fabric ends healed *)
  (match List.rev r.Chaos.rep_checks with
   | last :: _ -> Testutil.check_bool "healed at end" true (last.Chaos.chk_converged)
   | [] -> Alcotest.fail "no checks ran");
  match r.Chaos.rep_convergence with
  | Some s -> Testutil.check_bool "convergence observed" true (s.Obs.n > 0)
  | None -> Alcotest.fail "no convergence_ms summary"

(* a campaign with the incremental verifier riding along: every applied
   action triggers a delta re-verification, and at every quiescent check
   the incremental digest must equal the full run's *)
let test_verify_every_update () =
  let fab = Testutil.converged_fabric () in
  let plan = Chaos.generate ~seed:7 ~duration:(Time.ms 4000) (Fabric.tree fab) in
  let r = Chaos.run_campaign ~label:"inc" ~seed:7 ~verify_every_update:true fab plan in
  Testutil.check_bool "campaign ok" true (Chaos.report_ok r);
  Testutil.check_bool "updates were verified" true (r.Chaos.rep_updates_verified > 0);
  Testutil.check_int "incremental never diverged from full" 0
    r.Chaos.rep_incremental_divergences

let test_campaign_json_deterministic () =
  let j seed = Obs.Json.to_string (Chaos.report_to_json (run_mixed seed)) in
  Testutil.check_string "same seed, byte-identical JSON" (j 42) (j 42)

(* ---------------- cross-family differential ---------------- *)

let run_family ~seed family =
  let fam =
    match Topology.Topo.Family.of_string ~k:4 family with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let fab = Fabric.create @@ Fabric.Config.of_family ~seed fam in
  if not (Fabric.await_convergence fab) then Alcotest.failf "%s failed to converge" family;
  let plan = Chaos.generate ~seed ~duration:(Time.ms 4000) (Fabric.tree fab) in
  Chaos.run_campaign ~label:"diff" ~seed fab plan

(* the same seed drives every family member deterministically: per-family
   campaigns are byte-stable, all of them end verifier-clean, and the
   plain and AB wirings genuinely diverge (their uplink link sets differ,
   so the seeded plans must too) *)
let test_family_campaign_differential () =
  let json family = Obs.Json.to_string (Chaos.report_to_json (run_family ~seed:42 family)) in
  let reports =
    List.map
      (fun family ->
        let a = json family in
        Testutil.check_string (family ^ " byte-stable across runs") a (json family);
        let r = run_family ~seed:42 family in
        Testutil.check_bool (family ^ " campaign clean") true (Chaos.report_ok r);
        (family, a))
      [ "plain"; "ab"; "two-layer" ]
  in
  match reports with
  | (_, plain) :: (_, ab) :: (_, two_layer) :: _ ->
    Testutil.check_bool "plain and ab campaigns differ" false (plain = ab);
    Testutil.check_bool "plain and two-layer campaigns differ" false (plain = two_layer)
  | _ -> Alcotest.fail "missing family reports"

(* AB post-failure re-convergence with the incremental verifier checking
   every single update: zero divergences from the full verifier *)
let test_ab_verify_every_update () =
  let fab = Fabric.create @@ Fabric.Config.of_family ~seed:7 (Topology.Topo.Family.Ab { k = 4 }) in
  if not (Fabric.await_convergence fab) then Alcotest.fail "ab fabric failed to converge";
  let plan = Chaos.generate ~seed:7 ~duration:(Time.ms 4000) (Fabric.tree fab) in
  let r = Chaos.run_campaign ~label:"ab-inc" ~seed:7 ~verify_every_update:true fab plan in
  Testutil.check_bool "ab campaign ok" true (Chaos.report_ok r);
  Testutil.check_bool "updates were verified" true (r.Chaos.rep_updates_verified > 0);
  Testutil.check_int "incremental never diverged from full" 0
    r.Chaos.rep_incremental_divergences

let () =
  Alcotest.run "chaos"
    [ ( "plans",
        [ Alcotest.test_case "profiles" `Quick test_profiles;
          Alcotest.test_case "deterministic generation" `Quick test_generate_deterministic;
          Alcotest.test_case "mixed quota" `Quick test_generate_mixed_quota;
          Alcotest.test_case "self-contained episodes" `Quick test_generate_self_contained ] );
      ( "switch recovery",
        [ Alcotest.test_case "agg crash + reboot" `Quick test_recover_agg_switch;
          Alcotest.test_case "edge reboot restores hosts" `Quick
            test_recover_edge_switch_restores_hosts;
          Alcotest.test_case "reboot across fm restart" `Quick test_recover_during_fm_restart ] );
      ( "campaigns",
        [ Alcotest.test_case "mixed campaign clean" `Slow test_mixed_campaign_clean;
          Alcotest.test_case "incremental verify on every update" `Slow
            test_verify_every_update;
          Alcotest.test_case "json deterministic" `Slow test_campaign_json_deterministic;
          Alcotest.test_case "cross-family differential" `Slow
            test_family_campaign_differential;
          Alcotest.test_case "ab incremental verify" `Slow test_ab_verify_every_update ] ) ]
