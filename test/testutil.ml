(* Shared helpers for the test suites. *)

let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_float_eps name ~eps expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g (eps %g)" name expected actual eps

(* the static dataplane verifier must be clean at every quiescent point;
   failures dump the full report *)
let assert_verified ?faults ?(msg = "static verification") fab =
  let r = Portland_verify.Verify.run ?faults fab in
  if not (Portland_verify.Verify.ok r) then
    Alcotest.failf "%s:@.%a" msg Portland_verify.Verify.pp_report r

(* a converged k=4 PortLand fabric, reused by several suites *)
let converged_fabric ?(k = 4) ?(seed = 42) ?spare_slots () =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.fattree ?spare_slots ~seed ~k () in
  if not (Portland.Fabric.await_convergence fab) then
    Alcotest.fail "fabric failed to converge";
  fab

(* same, for any member of the topology family *)
let converged_family ?(seed = 42) family =
  let fab = Portland.Fabric.create @@ Portland.Fabric.Config.of_family ~seed family in
  if not (Portland.Fabric.await_convergence fab) then
    Alcotest.failf "fabric (%s) failed to converge"
      (Topology.Topo.Family.to_string family);
  fab

(* all-pairs UDP probe: every host sends one datagram to every other host;
   fails unless every single one is delivered *)
let assert_all_pairs_deliver ?(ms = 200) ?(msg = "all-pairs delivery") fab =
  let hosts = Array.of_list (Portland.Fabric.hosts fab) in
  let received = Array.make (Array.length hosts) 0 in
  Array.iteri
    (fun i h -> Portland.Host_agent.set_rx h (fun _ -> received.(i) <- received.(i) + 1))
    hosts;
  let sent = ref 0 in
  Array.iteri
    (fun i src ->
      Array.iteri
        (fun j dst ->
          if i <> j then begin
            Portland.Host_agent.send_ip src
              ~dst:(Portland.Host_agent.ip dst)
              (Netcore.Ipv4_pkt.Udp
                 (Netcore.Udp.make ~flow_id:1 ~app_seq:!sent ~payload_len:100 ()));
            incr sent
          end)
        hosts)
    hosts;
  Portland.Fabric.run_for fab (Eventsim.Time.ms ms);
  let total = Array.fold_left ( + ) 0 received in
  check_int msg !sent total

(* a tiny flat-L2 playground: [n] hosts on one learning switch (no loops,
   no STP needed) — convenient substrate for transport tests *)
let tiny_lan ?(n = 2) () =
  let engine = Eventsim.Engine.create () in
  let nodes =
    { Topology.Topo.id = 0; kind = Topology.Topo.Edge_switch; name = "sw"; nports = n }
    :: List.init n (fun i ->
           { Topology.Topo.id = i + 1;
             kind = Topology.Topo.Host;
             name = Printf.sprintf "h%d" i;
             nports = 1 })
  in
  let links =
    List.init n (fun i ->
        { Topology.Topo.a = { Topology.Topo.node = 0; port = i };
          b = { Topology.Topo.node = i + 1; port = 0 } })
  in
  let topo = Topology.Topo.create ~nodes ~links in
  let net = Switchfab.Net.create engine topo in
  let sw = Baselines.Learning_switch.attach engine net ~device:0 ~stp:false () in
  Baselines.Learning_switch.start sw;
  let hosts =
    List.init n (fun i ->
        let ip = Netcore.Ipv4_addr.of_octets 10 0 0 (i + 2) in
        let amac = Netcore.Mac_addr.of_int (0x020000000000 lor (i + 1)) in
        let h =
          Portland.Host_agent.create engine Portland.Config.default net ~device:(i + 1) ~amac
            ~ip ()
        in
        Portland.Host_agent.start h;
        h)
  in
  (* let all boot-time gratuitous ARPs (3 per host) drain *)
  Eventsim.Engine.run ~until:(Eventsim.Time.ms 600) engine;
  (engine, net, hosts)

let run_ms engine ms =
  Eventsim.Engine.run ~until:(Eventsim.Engine.now engine + Eventsim.Time.ms ms) engine
